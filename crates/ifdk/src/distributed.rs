//! The distributed iFDK framework (paper Section 4).
//!
//! Every rank of the `R x C` grid runs the three-thread pipeline of
//! Figure 4:
//!
//! * the **Filtering thread** loads this rank's `Np/(C*R)` projections
//!   from the PFS and filters them on a worker pool (the OpenMP threads of
//!   Section 4.1.3), streaming results into a circular buffer;
//! * the **Main thread** performs one AllGather per projection across its
//!   *column* communicator — after `Np/(C*R)` operations every rank of the
//!   column holds the column's full `Np/C` filtered projections — and
//!   streams them into the back-projection buffer; at the end it reduces
//!   the partial sub-volume across its *row* communicator and, at the row
//!   root, stores the finished slices to the PFS;
//! * the **Back-projection thread** consumes fixed 32-projection batches
//!   and accumulates them into this row's symmetric slab pair with the
//!   proposed kernel (`L1-Tran` configuration).
//!
//! The run is deterministic for a fixed configuration: batches are fixed
//! chunks of a deterministic stream and the reduction tree is fixed by
//! `(R, C)`.
//!
//! # Observability
//!
//! The whole pipeline is instrumented through [`ct_obs`]: each of the
//! three threads opens a track tagged `(rank, role)` and wraps its work in
//! spans named `load`, `filter`, `allgather`, `backprojection`, `reduce`
//! and `store` (PFS transfers nest as `pfs.read`/`pfs.write`; with the
//! tiled driver enabled, per-tile `bp.tile` spans tagged by tile index
//! nest under each `backprojection` batch and show tile-level load
//! balance).
//! Communication spans carry the exact payload bytes measured by the
//! communicator's per-rank traffic counters, and the circular buffers
//! report occupancy high-water marks and stall counts as gauges/counters
//! plus timed `ring.{gather,bp}.{push,pop}_wait` spans on the blocked
//! thread's own lane. Consumer spans are tagged with the producer spans
//! they depend on (`allgather` ← `filter`, `backprojection` ← the batch's
//! `allgather` op range), which the Chrome exporter turns into flow
//! arrows and [`ct_obs::analysis`] into a critical path;
//! [`DistReport::pipeline_analysis`] runs that analysis on a trace-mode
//! capture.
//! [`DistConfig::obs`] selects the mode: `Recorder::summary()` (the
//! default) keeps per-stage aggregates only, `Recorder::trace()`
//! additionally retains every span for Chrome-trace export
//! (`ct_obs::chrome::to_chrome_json`), and `Recorder::off()` makes every
//! recording call a no-op — no locks, no allocation, no clock reads on
//! the hot path. [`model_divergence`] compares a measured
//! [`DistReport`] against the paper's analytic model (Eqs. 8–19).

use crate::grid::RankGrid;
use crate::ring::RingBuffer;
use ct_bp::fdk_scale;
use ct_bp::lanes::{backproject_pair_batch_reporting, KernelImpl};
use ct_bp::tiled::TileConfig;
use ct_comm::{AllGatherAlgorithm, Comm, Universe};
use ct_core::error::{CtError, Result};
use ct_core::geometry::{CbctGeometry, ProjectionMatrix};
use ct_core::problem::Dims3;
use ct_core::projection::{ProjectionImage, TransposedProjection};
use ct_core::volume::{Volume, VolumeLayout};
use ct_filter::{FilterConfig, Filterer};
use ct_obs::clock;
use ct_obs::live::{FlightRecorder, LiveOptions, LiveOutcome, LiveRegistry, LiveSession};
use ct_obs::{DivergenceReport, PipelineAnalysis, Recorder, ThreadRole, TraceData};
use ct_par::stats::{StageSummary, TimingReport};
use ct_par::Pool;
use ct_perfmodel::{KernelModel, MachineConfig, ModelBreakdown, ModelInput};
use ct_pfs::PfsStore;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// How the partial sub-volumes of a row are combined and stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PostMode {
    /// The paper's scheme: one Reduce to the row root, which stores every
    /// slice of the pair (Figure 4b).
    #[default]
    RootReduce,
    /// Ring reduce-scatter: every rank of the row ends up with a fully
    /// reduced share of the slices and stores them itself — same traffic
    /// as the Reduce, `C`-way parallel storing (the post-back-projection
    /// overlap the paper leaves as future work, Section 4.1.4).
    ReduceScatter,
}

/// Live-telemetry configuration for a distributed run
/// ([`DistConfig::live`]). While the run executes, a sampler thread
/// periodically snapshots per-stage completion counters, ring occupancy
/// and in-flight stall waits into versioned [`ct_obs::live::MetricsSnapshot`]
/// frames, runs the stall watchdog, and keeps the flight recorder's
/// bounded per-lane span window. The outcome lands in
/// [`DistReport::live`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Sampling period for metrics frames.
    pub period: Duration,
    /// Stall-watchdog deadline: a ring side blocked longer than this
    /// trips the watchdog (flight dump + `watchdog.trip` event). `None`
    /// disables the watchdog.
    pub stall_deadline: Option<Duration>,
    /// Flight-recorder window: most recent completed spans kept per
    /// `(rank, role)` lane.
    pub flight_capacity: usize,
    /// Stream one JSON frame per sample to this file (JSONL). `None`
    /// keeps frames in memory only (the final frame is still returned).
    pub jsonl_path: Option<PathBuf>,
    /// Machine side of the analytic model (Eqs. 8-19). With both
    /// `machine` and `kernel` set, progress/ETA weights stages by
    /// predicted seconds and each frame carries live model-vs-measured
    /// divergence; otherwise progress weights by planned item counts.
    pub machine: Option<MachineConfig>,
    /// Kernel side of the analytic model.
    pub kernel: Option<KernelModel>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            period: Duration::from_millis(100),
            stall_deadline: Some(Duration::from_secs(30)),
            flight_capacity: 512,
            jsonl_path: None,
            machine: None,
            kernel: None,
        }
    }
}

/// Distributed-run configuration.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Acquisition geometry (defines `Np` and the volume).
    pub geo: CbctGeometry,
    /// The rank grid (`R` rows x `C` columns).
    pub grid: RankGrid,
    /// Filtering-stage configuration.
    pub filter: FilterConfig,
    /// Back-projection batch size (the paper uses 32).
    pub batch: usize,
    /// Tile shape for the blocked back-projection driver; `None` runs
    /// the untiled per-plane path. Output bits are identical either way;
    /// tiling changes scheduling and adds per-tile `bp.tile` spans.
    pub tile: Option<TileConfig>,
    /// Column-sweep implementation for the kernel (scalar oracle vs
    /// lane-array; see [`ct_bp::lanes`]). The default reads the
    /// `IFDK_KERNEL` env var; strict lanes is bit-identical to scalar.
    pub kernel: KernelImpl,
    /// Worker threads per rank for filtering and the kernel.
    pub threads_per_rank: usize,
    /// Circular-buffer capacity (projections).
    pub ring_capacity: usize,
    /// AllGather algorithm for the per-projection column collective.
    pub allgather: AllGatherAlgorithm,
    /// Reduction/storage strategy for the row collective.
    pub post: PostMode,
    /// Apply the global FDK constant before storing.
    pub apply_scale: bool,
    /// Receive timeout for the communication fabric.
    pub timeout: Duration,
    /// Observation sink for the run. `Recorder::summary()` (the default)
    /// feeds the per-rank [`TimingReport`]s; `Recorder::trace()` also
    /// captures the span timeline in [`DistReport::trace`];
    /// `Recorder::off()` disables all recording at zero cost — the
    /// per-rank reports then come back empty.
    pub obs: Recorder,
    /// Live telemetry for the run: periodic metrics frames, stall
    /// watchdog and flight recorder. `None` (the default) runs without
    /// a sampler thread.
    pub live: Option<LiveConfig>,
    /// Artificially delay the back-projection thread before each batch.
    /// A fault-injection hook for exercising back-pressure and the
    /// stall watchdog (used by tests and
    /// `examples/distributed_reconstruction --throttle-bp-ms`); leave
    /// `None` for real runs.
    pub bp_throttle: Option<Duration>,
}

impl DistConfig {
    /// A reasonable configuration for a geometry and grid.
    pub fn new(geo: CbctGeometry, grid: RankGrid) -> Self {
        Self {
            geo,
            grid,
            filter: FilterConfig::default(),
            batch: 32,
            tile: Some(TileConfig::AUTO),
            kernel: KernelImpl::from_env(),
            threads_per_rank: 1,
            ring_capacity: 64,
            allgather: AllGatherAlgorithm::Ring,
            post: PostMode::default(),
            apply_scale: true,
            timeout: Duration::from_secs(120),
            obs: Recorder::summary(),
            live: None,
            bp_throttle: None,
        }
    }

    fn validate(&self) -> Result<()> {
        self.geo.validate()?;
        let np = self.geo.num_projections;
        let n = self.grid.n_ranks();
        if !np.is_multiple_of(n) {
            return Err(CtError::InvalidConfig(format!(
                "Np = {np} must divide by Nranks = {n}"
            )));
        }
        if !self.geo.volume.nz.is_multiple_of(2 * self.grid.rows) {
            return Err(CtError::InvalidConfig(format!(
                "Nz = {} must divide into 2*R = {} half-slabs",
                self.geo.volume.nz,
                2 * self.grid.rows
            )));
        }
        if self.batch == 0 || self.batch > 32 {
            return Err(CtError::InvalidConfig("batch must be in 1..=32".into()));
        }
        Ok(())
    }
}

/// Outcome of a distributed reconstruction.
#[derive(Debug)]
pub struct DistReport {
    /// Wall-clock end-to-end runtime (load -> store), seconds.
    pub runtime_secs: f64,
    /// End-to-end GUPS (Section 2.3 definition).
    pub gups: f64,
    /// Per-rank stage timing reports (rank order), rebuilt from the
    /// observation capture. Empty reports when the recorder was off.
    pub per_rank: Vec<TimingReport>,
    /// Fabric traffic totals.
    pub comm_messages: u64,
    /// Fabric traffic totals.
    pub comm_bytes: u64,
    /// The full observation capture: per-stage aggregates always (when
    /// the recorder is on), individual span events in trace mode. Export
    /// with `ct_obs::chrome::to_chrome_json`.
    pub trace: TraceData,
    /// Live-telemetry outcome when [`DistConfig::live`] was set: frame
    /// count, final frame, watchdog trips (with the flight dump captured
    /// at the first trip) and the end-of-run flight dump.
    pub live: Option<LiveOutcome>,
}

impl DistReport {
    /// Maximum over ranks of a stage's total seconds.
    pub fn max_stage_secs(&self, stage: &str) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.total_secs(stage))
            .fold(0.0, f64::max)
    }

    /// All per-rank reports folded into one cluster-wide report.
    pub fn merged_timing(&self) -> TimingReport {
        TimingReport::merged(self.per_rank.iter())
    }

    /// Critical-path and overlap analysis of the capture: per-lane
    /// busy/stall/idle accounting, ring-stall attribution and the
    /// Eq.-19 overlap-efficiency figure. Needs individual span events,
    /// so it returns `None` unless the run used `Recorder::trace()`.
    pub fn pipeline_analysis(&self) -> Option<PipelineAnalysis> {
        PipelineAnalysis::from_trace(&self.trace)
    }
}

/// Run the distributed reconstruction: read projections from `input`,
/// write the volume's `Nz` slices to `output`.
///
/// Projections must be stored as `PfsStore::projection_name(i)` objects of
/// `Nu * Nv` floats (row-major). Slices are written as
/// `PfsStore::slice_name(k)` objects of `Nx * Ny` floats.
pub fn reconstruct_distributed(
    cfg: &DistConfig,
    input: &PfsStore,
    output: &PfsStore,
) -> Result<DistReport> {
    cfg.validate()?;
    // One capture per run, even when a config (and its recorder) is
    // reused across runs.
    cfg.obs.reset();
    let n_ranks = cfg.grid.n_ranks();

    // Live telemetry: attach the registry + flight recorder *before*
    // any pipeline track opens (tracks bind the hooks at creation), and
    // start the sampler so frames cover the whole run.
    let mut session: Option<LiveSession> = None;
    let live_reg: Option<LiveRegistry> = match &cfg.live {
        Some(lc) => {
            let registry = LiveRegistry::new();
            plan_live_stages(cfg, lc, &registry)?;
            let flight = FlightRecorder::new(lc.flight_capacity);
            cfg.obs.attach_live(&registry);
            cfg.obs.attach_flight(&flight);
            let sink: Option<Box<dyn std::io::Write + Send>> = match &lc.jsonl_path {
                Some(p) => {
                    let f = std::fs::File::create(p).map_err(|e| {
                        CtError::InvalidConfig(format!(
                            "creating live metrics sink {}: {e}",
                            p.display()
                        ))
                    })?;
                    Some(Box::new(std::io::BufWriter::new(f)))
                }
                None => None,
            };
            let opts = LiveOptions {
                period: lc.period,
                stall_deadline: lc.stall_deadline,
            };
            session = Some(LiveSession::start(
                registry.clone(),
                Some(flight),
                &cfg.obs,
                opts,
                sink,
            ));
            Some(registry)
        }
        None => {
            // A recorder reused from an earlier live run must not keep
            // feeding that run's registry.
            cfg.obs.detach_live();
            None
        }
    };

    let universe = Universe::with_timeout(cfg.timeout);
    let t0 = clock::now();

    let mats = cfg.geo.projection_matrices();
    let launched = universe
        .launch_with_stats(n_ranks, |comm| {
            run_rank(cfg, input, output, &mats, comm, live_reg.as_ref())
        })
        .map_err(|e| CtError::InvalidConfig(format!("distributed run failed: {e}")));

    let runtime = t0.elapsed().as_secs_f64();
    // Join the sampler before surfacing any launch error: the thread
    // must never outlive the call, and its final frame/trips are wanted
    // even (especially) for failed runs.
    let live = session.map(LiveSession::stop);
    cfg.obs.detach_live();
    let (results, traffic) = launched?;
    for r in results {
        r?;
    }
    // Every rank's tracks have merged by now (launch joins all ranks).
    let trace = cfg.obs.collect();
    let per_rank = (0..n_ranks)
        .map(|r| timing_report_for_rank(&trace, r as u32))
        .collect();
    let (comm_messages, comm_bytes) = (traffic.messages_sent, traffic.bytes_sent);
    let updates = (cfg.geo.volume.len() as u128) * (cfg.geo.num_projections as u128);
    Ok(DistReport {
        runtime_secs: runtime,
        gups: ct_core::metrics::gups(updates, runtime),
        per_rank,
        comm_messages,
        comm_bytes,
        trace,
        live,
    })
}

/// Declare the run's planned per-stage item counts (and, with a model
/// configured, predicted aggregate busy seconds) on the live registry —
/// what the progress/ETA estimator weighs live completion against.
/// Counts are cluster-wide: `Np` loads/filters/AllGather ops, the total
/// back-projection batch count, one reduce per rank, and one store per
/// storing rank. Predictions are likewise aggregate: the model's
/// per-rank stage seconds times the number of ranks doing that stage.
fn plan_live_stages(cfg: &DistConfig, lc: &LiveConfig, reg: &LiveRegistry) -> Result<()> {
    let np = cfg.geo.num_projections as u64;
    let n = cfg.grid.n_ranks() as u64;
    let rows = cfg.grid.rows as u64;
    let cols = cfg.grid.cols as u64;
    // Each rank back-projects its column's Np/C projections in batches.
    let batches = n * (np / cols).div_ceil(cfg.batch as u64);
    let store_ranks = match cfg.post {
        PostMode::RootReduce => rows,
        PostMode::ReduceScatter => n,
    };
    let model = match (&lc.machine, &lc.kernel) {
        (Some(machine), Some(kernel)) => {
            let input = ModelInput {
                nu: cfg.geo.detector.nu,
                nv: cfg.geo.detector.nv,
                np: cfg.geo.num_projections,
                nx: cfg.geo.volume.nx,
                ny: cfg.geo.volume.ny,
                nz: cfg.geo.volume.nz,
                r: cfg.grid.rows,
                c: cfg.grid.cols,
                machine: machine.clone(),
                kernel: *kernel,
            };
            input.validate().map_err(CtError::InvalidConfig)?;
            Some(ModelBreakdown::evaluate(&input))
        }
        _ => None,
    };
    let nf = n as f64;
    let plan: [(&str, u64, Option<f64>); 6] = [
        ("load", np, model.as_ref().map(|m| m.t_load * nf)),
        ("filter", np, model.as_ref().map(|m| m.t_flt * nf)),
        ("allgather", np, model.as_ref().map(|m| m.t_allgather * nf)),
        (
            "backprojection",
            batches,
            model.as_ref().map(|m| m.t_bp * nf),
        ),
        ("reduce", n, model.as_ref().map(|m| m.t_reduce * nf)),
        (
            "store",
            store_ranks,
            model.as_ref().map(|m| m.t_store * store_ranks as f64),
        ),
    ];
    for (name, planned, predicted) in plan {
        reg.plan_stage(name, planned, predicted);
    }
    Ok(())
}

/// Rebuild one rank's [`TimingReport`] from the capture, combining the
/// rank's roles per stage name (name-sorted, like `StageTimer` produced).
fn timing_report_for_rank(trace: &TraceData, rank: u32) -> TimingReport {
    let mut by_name: BTreeMap<&str, StageSummary> = BTreeMap::new();
    for s in trace.stages.iter().filter(|s| s.rank == rank) {
        let e = by_name.entry(s.name).or_insert_with(|| StageSummary {
            name: s.name.to_string(),
            count: 0,
            total: Duration::ZERO,
            max: Duration::ZERO,
        });
        e.count += s.count as usize;
        e.total += Duration::from_nanos(s.total_ns);
        e.max = e.max.max(Duration::from_nanos(s.max_ns));
    }
    TimingReport {
        stages: by_name.into_values().collect(),
    }
}

/// Compare a measured run against the paper's analytic performance model
/// (Eqs. 8–19): one row per pipeline stage plus the end-to-end runtime,
/// with predicted seconds from [`ModelBreakdown::evaluate`] and observed
/// seconds from the busiest rank of `report`.
///
/// The observed side uses `report.max_stage_secs`, matching the model's
/// per-rank convention. `DivergenceReport::to_table` renders the
/// predicted/observed/ratio table.
pub fn model_divergence(
    cfg: &DistConfig,
    report: &DistReport,
    machine: &MachineConfig,
    kernel: &KernelModel,
) -> Result<DivergenceReport> {
    let input = ModelInput {
        nu: cfg.geo.detector.nu,
        nv: cfg.geo.detector.nv,
        np: cfg.geo.num_projections,
        nx: cfg.geo.volume.nx,
        ny: cfg.geo.volume.ny,
        nz: cfg.geo.volume.nz,
        r: cfg.grid.rows,
        c: cfg.grid.cols,
        machine: machine.clone(),
        kernel: *kernel,
    };
    input.validate().map_err(CtError::InvalidConfig)?;
    let model = ModelBreakdown::evaluate(&input);
    let mut div = DivergenceReport::new();
    for (stage, predicted) in [
        ("load", model.t_load),
        ("filter", model.t_flt),
        ("allgather", model.t_allgather),
        ("backprojection", model.t_bp),
        ("reduce", model.t_reduce),
        ("store", model.t_store),
    ] {
        div.push(stage, predicted, report.max_stage_secs(stage));
    }
    div.push("runtime", model.t_runtime, report.runtime_secs);
    Ok(div)
}

fn run_rank(
    cfg: &DistConfig,
    input: &PfsStore,
    output: &PfsStore,
    mats: &[ProjectionMatrix],
    comm: &Comm,
    live: Option<&LiveRegistry>,
) -> Result<()> {
    let rank = comm.rank();
    let grid = cfg.grid;
    let row = grid.row_of(rank);
    let col = grid.col_of(rank);
    let geo = &cfg.geo;
    let np = geo.num_projections;
    let pool = Pool::new(cfg.threads_per_rank);
    let obs = cfg.obs.clone();
    let main_track = obs.track(rank as u32, ThreadRole::Main);
    let _main_cur = ct_obs::current::set_current(&main_track);

    // Column communicator: color = col, ordered by row (Figure 3b left).
    let col_comm = comm.split(col as u64, row as u64);
    // Row communicator: color = row, ordered by col (Figure 3b right).
    let row_comm = comm.split(row as u64, col as u64);
    debug_assert_eq!(col_comm.rank(), row);
    debug_assert_eq!(row_comm.rank(), col);

    let my_range = grid.projections_of_rank(rank, np)?;
    let col_range = grid.projections_of_column(col, np)?;
    let ops = my_range.len();
    let pair = grid.slab_pair_of_row(row, geo.volume.nz)?;
    let filterer = Filterer::new(geo, cfg.filter);

    // Buffers: filtered (local) projections, then gathered (column-wide).
    // Named wait spans make every blocked push/pop visible on the
    // blocked thread's lane as `ring.<name>.{push,pop}_wait`.
    let to_gather: RingBuffer<Vec<f32>> = RingBuffer::with_wait_spans(
        cfg.ring_capacity,
        "ring.gather.push_wait",
        "ring.gather.pop_wait",
    );
    // Items carry (projection index, AllGather op) so the consumer can
    // tag each batch with the producer ops it depends on.
    let to_bp: RingBuffer<(usize, u64, TransposedProjection)> = RingBuffer::with_wait_spans(
        cfg.ring_capacity.max(2 * grid.rows),
        "ring.bp.push_wait",
        "ring.bp.pop_wait",
    );
    // Expose each ring's occupancy and *in-flight* stall waits to the
    // sampler — completed stalls only reach the histograms after the
    // waiter wakes, so the watchdog needs these live probes.
    if let Some(reg) = live {
        reg.watch_ring(to_gather.live_probe(format!("rank{rank}.ring.gather")));
        reg.watch_ring(to_bp.live_probe(format!("rank{rank}.ring.bp")));
    }

    let scope_result = std::thread::scope(|s| -> Result<Volume> {
        // ------------------------------------------------ Filtering thread
        let flt_ring = to_gather.clone();
        let flt_obs = obs.clone();
        let flt_pool = pool;
        let flt_range = my_range.clone();
        let filterer_ref = &filterer;
        let flt = s.spawn(move || -> Result<()> {
            let track = flt_obs.track(rank as u32, ThreadRole::Filter);
            let _cur = ct_obs::current::set_current(&track);
            let body = || -> Result<()> {
                for i in flt_range {
                    let data = {
                        let mut sp = track.span("load").with_index(i as u64);
                        let d = input.read_f32(&PfsStore::projection_name(i));
                        if let Ok(d) = &d {
                            sp.set_bytes(4 * d.len() as u64);
                        }
                        d
                    };
                    let data = data.map_err(|e| {
                        CtError::InvalidConfig(format!("loading projection {i}: {e}"))
                    })?;
                    let img = ProjectionImage::from_vec(geo.detector, data)?;
                    let q = {
                        let _sp = track.span("filter").with_index(i as u64);
                        let _ = &flt_pool; // reserved for multi-projection batching
                        filterer_ref.filter_indexed(i, &img)
                    };
                    if flt_ring.push(q.into_vec()).is_err() {
                        break; // pipeline shut down early
                    }
                }
                Ok(())
            };
            let result = body();
            // Close on every exit path or the main thread blocks forever.
            flt_ring.close();
            result
        });

        // ------------------------------------------- Back-projection thread
        let bp_ring = to_bp.clone();
        let bp_obs = obs.clone();
        let bp_pool = pool;
        let batch = cfg.batch;
        let tile_cfg = cfg.tile;
        let kernel = cfg.kernel;
        let throttle = cfg.bp_throttle;
        let dims = geo.volume;
        let nv = geo.detector.nv;
        let bp_per = geo.detector.len();
        let bp = s.spawn(move || -> Result<Volume> {
            let track = bp_obs.track(rank as u32, ThreadRole::Backprojection);
            // Bind the track so the ring's pop-wait spans land here.
            let _cur = ct_obs::current::set_current(&track);
            // Close the inbound ring on every exit path so a failing
            // consumer unblocks the producer (its push returns Err).
            struct CloseOnDrop<T>(RingBuffer<T>);
            impl<T> Drop for CloseOnDrop<T> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let _closer = CloseOnDrop(bp_ring.clone());
            let mut acc = Volume::zeros(
                Dims3::new(dims.nx, dims.ny, pair.local_nz()),
                VolumeLayout::KMajor,
            );
            let mut batch_idx = 0u64;
            loop {
                // Fault injection: delay each batch so the inbound ring
                // fills and the main thread's pushes stall (watchdog and
                // back-pressure testing).
                if let Some(d) = throttle {
                    std::thread::sleep(d);
                }
                let mut items: Vec<(usize, u64, TransposedProjection)> = Vec::with_capacity(batch);
                while items.len() < batch {
                    match bp_ring.pop() {
                        Some(x) => items.push(x),
                        None => break,
                    }
                }
                if items.is_empty() {
                    break;
                }
                let batch_mats: Vec<ProjectionMatrix> =
                    items.iter().map(|(i, _, _)| mats[*i]).collect();
                let samplers: Vec<&TransposedProjection> =
                    items.iter().map(|(_, _, q)| q).collect();
                // The batch consumes everything the [op_lo, op_hi]
                // AllGather ops produced.
                let op_lo = items.iter().map(|(_, o, _)| *o).min().unwrap_or(0);
                let op_hi = items.iter().map(|(_, o, _)| *o).max().unwrap_or(0);
                {
                    let mut sp = track
                        .span("backprojection")
                        .with_index(batch_idx)
                        .with_deps("allgather", op_lo, op_hi);
                    sp.set_bytes((items.len() * bp_per * 4) as u64);
                    let (part, reports) = backproject_pair_batch_reporting(
                        &bp_pool,
                        kernel,
                        &batch_mats,
                        &samplers,
                        nv,
                        dims,
                        pair,
                        batch,
                        tile_cfg,
                    );
                    // Tile intervals were measured on pool workers (which
                    // cannot own a track); attribute them here, tagged by
                    // tile index, so traces show tile-level load balance
                    // (`reports` is empty on the untiled path). The tile
                    // set is a pure function of the config, keeping the
                    // span structure deterministic.
                    for r in &reports {
                        track.record_completed(
                            "bp.tile",
                            Some(r.tile.index as u64),
                            None,
                            r.started,
                            r.finished,
                        );
                    }
                    acc.accumulate(&part)?;
                }
                batch_idx += 1;
            }
            Ok(acc)
        });

        // ------------------------------------------------------ Main thread
        // One AllGather per local projection: op o moves projection
        // (my_range.start + o) from every rank of the column.
        let mut gather_err = None;
        for o in 0..ops {
            let Some(block) = to_gather.pop() else {
                break; // filter thread ended early (its error is joined below)
            };
            let gathered = {
                let before = col_comm.local_stats();
                // Op o cannot start before this rank filtered its own
                // contribution, projection my_range.start + o.
                let mut sp = main_track.span("allgather").with_index(o as u64).with_deps(
                    "filter",
                    (my_range.start + o) as u64,
                    (my_range.start + o) as u64,
                );
                let g = col_comm.all_gather_with(cfg.allgather, &block);
                sp.set_bytes(col_comm.local_stats().since(before).bytes_sent);
                g
            };
            // Rank r' of the column contributed projection
            // col_range.start + r' * ops + o.
            let per = geo.detector.len();
            for (rp, chunk) in gathered.chunks_exact(per).enumerate() {
                let idx = col_range.start + rp * ops + o;
                let img = ProjectionImage::from_vec(geo.detector, chunk.to_vec())?;
                if to_bp.push((idx, o as u64, img.transposed())).is_err() {
                    gather_err = Some(CtError::InvalidConfig(
                        "back-projection pipeline closed early".into(),
                    ));
                    break;
                }
            }
            if gather_err.is_some() {
                break;
            }
        }
        to_bp.close();

        let flt_result = flt.join().expect("filtering thread panicked");
        let bp_result = bp.join().expect("back-projection thread panicked");
        flt_result?;
        if let Some(e) = gather_err {
            return Err(e);
        }
        bp_result
    });

    // Ring telemetry: recorded whether or not the pipeline succeeded.
    // Totals land as counters/gauges; the individual waits were already
    // captured as timed spans on the blocked thread's lane.
    let gm = to_gather.metrics();
    main_track.gauge_max("ring.gather.high_water", gm.high_water as u64);
    main_track.counter_add("ring.gather.push_stalls", gm.push_stalls);
    main_track.counter_add("ring.gather.pop_stalls", gm.pop_stalls);
    let bm = to_bp.metrics();
    main_track.gauge_max("ring.bp.high_water", bm.high_water as u64);
    main_track.counter_add("ring.bp.push_stalls", bm.push_stalls);
    main_track.counter_add("ring.bp.pop_stalls", bm.pop_stalls);
    // The grid shape lets the offline analysis group AllGather spans by
    // column and Reduce spans by row into collective peer groups.
    main_track.gauge_max("grid.rows", grid.rows as u64);
    main_track.gauge_max("grid.cols", grid.cols as u64);
    let pair_volume = scope_result?;

    // ------------------------------------------------------- Reduce + store
    let scale = if cfg.apply_scale { fdk_scale(geo) } else { 1.0 };
    let (nx, ny) = (geo.volume.nx, geo.volume.ny);
    let slice_len = nx * ny;
    match cfg.post {
        PostMode::RootReduce => {
            let reduced = {
                let before = row_comm.local_stats();
                let mut sp = main_track.span("reduce");
                let r = row_comm.reduce_sum_f32(0, pair_volume.data());
                sp.set_bytes(row_comm.local_stats().since(before).bytes_sent);
                r
            };
            if let Some(data) = reduced {
                let mut vol = Volume::from_vec(
                    Dims3::new(nx, ny, pair.local_nz()),
                    VolumeLayout::KMajor,
                    data,
                )?;
                vol.scale(scale);
                let mut sp = main_track.span("store");
                sp.set_bytes((pair.local_nz() * slice_len * 4) as u64);
                for local in 0..pair.local_nz() {
                    let k = pair.global_k(local);
                    let slice = vol.slice_xy(local)?;
                    output
                        .write_f32(&PfsStore::slice_name(k), &slice)
                        .map_err(|e| CtError::InvalidConfig(format!("storing slice {k}: {e}")))?;
                }
                drop(sp);
            }
        }
        PostMode::ReduceScatter => {
            // Slices are contiguous in the i-major layout; partition them
            // across the row so every rank reduces and stores a share.
            let vol_im = pair_volume.into_layout(VolumeLayout::IMajor);
            let c_ranks = row_comm.size();
            let local_nz = pair.local_nz();
            let base = local_nz / c_ranks;
            let rem = local_nz % c_ranks;
            let slices_of = |c: usize| base + usize::from(c < rem);
            let counts: Vec<usize> = (0..c_ranks).map(|c| slices_of(c) * slice_len).collect();
            let my_first: usize = (0..row_comm.rank()).map(&slices_of).sum();
            let mut mine = {
                let before = row_comm.local_stats();
                let mut sp = main_track.span("reduce");
                let m = row_comm.reduce_scatter_sum_f32(vol_im.data(), &counts);
                sp.set_bytes(row_comm.local_stats().since(before).bytes_sent);
                m
            };
            for x in &mut mine {
                *x *= scale;
            }
            let mut sp = main_track.span("store");
            sp.set_bytes((mine.len() * 4) as u64);
            for (ls, slice) in mine.chunks_exact(slice_len).enumerate() {
                let k = pair.global_k(my_first + ls);
                output
                    .write_f32(&PfsStore::slice_name(k), slice)
                    .map_err(|e| CtError::InvalidConfig(format!("storing slice {k}: {e}")))?;
            }
            drop(sp);
        }
    }

    Ok(())
}

/// Helper used by examples/tests: write a projection stack into a store
/// in the canonical layout.
pub fn upload_projections(
    store: &PfsStore,
    stack: &ct_core::projection::ProjectionStack,
) -> Result<()> {
    for (i, img) in stack.iter().enumerate() {
        store
            .write_f32(&PfsStore::projection_name(i), img.data())
            .map_err(|e| CtError::InvalidConfig(format!("uploading projection {i}: {e}")))?;
    }
    Ok(())
}

/// Helper: read the stored volume back as a single i-major volume.
pub fn download_volume(store: &PfsStore, dims: Dims3) -> Result<Volume> {
    let mut vol = Volume::zeros(dims, VolumeLayout::IMajor);
    for k in 0..dims.nz {
        let slice = store
            .read_f32(&PfsStore::slice_name(k))
            .map_err(|e| CtError::InvalidConfig(format!("reading slice {k}: {e}")))?;
        if slice.len() != dims.nx * dims.ny {
            return Err(CtError::ShapeMismatch {
                expected: format!("{} floats", dims.nx * dims.ny),
                actual: format!("{}", slice.len()),
            });
        }
        for j in 0..dims.ny {
            for i in 0..dims.nx {
                vol.set(i, j, k, slice[j * dims.nx + i]);
            }
        }
    }
    Ok(vol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::{reconstruct, ReconOptions};
    use ct_core::forward::project_all_analytic;
    use ct_core::metrics::nrmse;
    use ct_core::phantom::Phantom;
    use ct_core::problem::Dims2;

    fn setup(n: usize, np: usize) -> (CbctGeometry, PfsStore) {
        let geo = CbctGeometry::standard(Dims2::new(2 * n, 2 * n), np, Dims3::cube(n));
        let stack = project_all_analytic(&geo, &Phantom::shepp_logan(n as f64 * 0.45));
        let store = PfsStore::memory();
        upload_projections(&store, &stack).unwrap();
        (geo, store)
    }

    fn run(geo: &CbctGeometry, input: &PfsStore, r: usize, c: usize) -> (Volume, DistReport) {
        let grid = RankGrid::new(r, c).unwrap();
        let cfg = DistConfig::new(geo.clone(), grid);
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, input, &output).unwrap();
        let vol = download_volume(&output, geo.volume).unwrap();
        (vol, report)
    }

    #[test]
    fn distributed_matches_single_node() {
        let (geo, store) = setup(16, 32);
        let stack = {
            // Rebuild the stack from the store to reconstruct locally.
            let mut s = ct_core::projection::ProjectionStack::new(geo.detector);
            for i in 0..geo.num_projections {
                let d = store.read_f32(&PfsStore::projection_name(i)).unwrap();
                s.push(ProjectionImage::from_vec(geo.detector, d).unwrap())
                    .unwrap();
            }
            s
        };
        let single = reconstruct(&geo, &stack, &ReconOptions::default()).unwrap();
        for (r, c) in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2)] {
            let (vol, _) = run(&geo, &store, r, c);
            let e = nrmse(single.data(), vol.data()).unwrap();
            assert!(e < 1e-5, "grid {r}x{c}: nrmse {e}");
        }
    }

    #[test]
    fn paper_figure7_grid_4x4() {
        // Figure 7's configuration (R=4, C=4, 16 ranks), scaled down.
        let (geo, store) = setup(16, 32);
        let (vol, report) = run(&geo, &store, 4, 4);
        // The reconstruction must show the phantom: centre brighter than
        // the corner background.
        let c = vol.get(8, 8, 8);
        let bg = vol.get(0, 0, 8);
        assert!(c > bg, "centre {c} vs background {bg}");
        assert_eq!(report.per_rank.len(), 16);
        assert!(report.gups > 0.0);
        assert!(report.comm_messages > 0);
    }

    #[test]
    fn allgather_algorithms_give_identical_volumes() {
        let (geo, store) = setup(8, 16);
        let output_of = |algo: AllGatherAlgorithm| {
            let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
            cfg.allgather = algo;
            let output = PfsStore::memory();
            reconstruct_distributed(&cfg, &store, &output).unwrap();
            download_volume(&output, geo.volume).unwrap()
        };
        let ring = output_of(AllGatherAlgorithm::Ring);
        let bruck = output_of(AllGatherAlgorithm::Bruck);
        let naive = output_of(AllGatherAlgorithm::GatherBroadcast);
        assert_eq!(ring.data(), bruck.data());
        assert_eq!(ring.data(), naive.data());
    }

    #[test]
    fn reduce_scatter_post_mode_matches_root_reduce() {
        let (geo, store) = setup(16, 32);
        let output_of = |post: PostMode, r: usize, c: usize| {
            let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(r, c).unwrap());
            cfg.post = post;
            let output = PfsStore::memory();
            let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
            (download_volume(&output, geo.volume).unwrap(), report)
        };
        for (r, c) in [(1, 1), (2, 2), (4, 4), (2, 4)] {
            let (root, _) = output_of(PostMode::RootReduce, r, c);
            let (scat, _) = output_of(PostMode::ReduceScatter, r, c);
            // Reduction tree order differs, so compare at fp tolerance.
            let e = ct_core::metrics::nrmse(root.data(), scat.data()).unwrap();
            assert!(e < 1e-6, "{r}x{c}: {e}");
        }
        // With C > 1 the scattered mode spreads storing across ranks:
        // every rank records a nonzero store stage.
        let (_, report) = output_of(PostMode::ReduceScatter, 2, 4);
        let storing_ranks = report
            .per_rank
            .iter()
            .filter(|t| t.total_secs("store") > 0.0)
            .count();
        assert!(storing_ranks > 2, "only {storing_ranks} ranks stored");
    }

    #[test]
    fn distributed_is_deterministic() {
        let (geo, store) = setup(8, 16);
        let (a, _) = run(&geo, &store, 2, 2);
        let (b, _) = run(&geo, &store, 2, 2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn report_contains_all_stages() {
        let (geo, store) = setup(8, 16);
        let (_, report) = run(&geo, &store, 2, 2);
        for stage in ["load", "filter", "allgather", "backprojection", "reduce"] {
            assert!(
                report.max_stage_secs(stage) > 0.0,
                "stage {stage} missing from report"
            );
        }
        // Only row roots store, but some rank must have.
        assert!(report.max_stage_secs("store") > 0.0);
    }

    #[test]
    fn trace_structure_is_deterministic() {
        // Two runs of the same DistConfig must capture the same span tree
        // — same (rank, role, name, index) rows — even though the
        // durations differ. Ring wait spans are excluded: a wait span
        // exists only when the thread actually blocked, which depends on
        // scheduling by design.
        let (geo, store) = setup(8, 16);
        let capture = || {
            let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
            cfg.obs = Recorder::trace();
            let output = PfsStore::memory();
            let mut trace = reconstruct_distributed(&cfg, &store, &output)
                .unwrap()
                .trace;
            trace
                .events
                .retain(|e| !e.name.ends_with(".push_wait") && !e.name.ends_with(".pop_wait"));
            trace
        };
        let a = capture();
        let b = capture();
        assert!(!a.events.is_empty());
        assert_eq!(a.structure(), b.structure());
    }

    #[test]
    fn trace_carries_dependency_tags_and_analysis() {
        let (geo, store) = setup(8, 16);
        let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        cfg.obs = Recorder::trace();
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        // Every AllGather op names the filter span it consumed; every
        // back-projection batch names its AllGather op range.
        let ag: Vec<_> = report
            .trace
            .events
            .iter()
            .filter(|e| e.name == "allgather")
            .collect();
        assert!(!ag.is_empty());
        for e in &ag {
            let d = e.deps.expect("allgather span missing deps");
            assert_eq!(d.stage, "filter");
            assert_eq!(d.lo, d.hi);
        }
        let bp: Vec<_> = report
            .trace
            .events
            .iter()
            .filter(|e| e.name == "backprojection")
            .collect();
        assert!(!bp.is_empty());
        for e in &bp {
            let d = e.deps.expect("backprojection span missing deps");
            assert_eq!(d.stage, "allgather");
            assert!(d.lo <= d.hi);
        }
        // The grid shape is recorded for collective peer grouping.
        assert_eq!(report.trace.gauge(0, "grid.rows"), Some(2));
        assert_eq!(report.trace.gauge(0, "grid.cols"), Some(2));
        // The exported trace pairs producers and consumers as flow events.
        let json = ct_obs::chrome::to_chrome_json(&report.trace);
        let check = ct_obs::chrome::validate(&json).unwrap();
        assert!(check.flow_events > 0, "no flow events in the export");
        // The offline analysis runs end-to-end on the real capture.
        let a = report.pipeline_analysis().expect("trace mode must analyze");
        assert!(a.wall_ns > 0);
        assert!(a.max_stage_ns <= a.critical_path_ns);
        assert!(a.critical_path_ns <= a.wall_ns);
        assert!(a.overlap_efficiency > 0.0 && a.overlap_efficiency <= 1.0);
        assert!(!a.critical_path.is_empty());
        assert!(a.report().contains("overlap efficiency"));
        // Summary-only captures have no events, so no analysis.
        let plain = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        let report = reconstruct_distributed(&plain, &store, &PfsStore::memory()).unwrap();
        assert!(report.pipeline_analysis().is_none());
    }

    #[test]
    fn trace_mode_exports_chrome_json_with_all_roles() {
        let (geo, store) = setup(8, 16);
        let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        cfg.obs = Recorder::trace();
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        let json = ct_obs::chrome::to_chrome_json(&report.trace);
        let check = ct_obs::chrome::validate(&json).expect("export must be a valid trace");
        assert_eq!(check.ranks, vec![0, 1, 2, 3]);
        for role in ["filter", "main", "backprojection"] {
            assert!(check.has_thread(role), "missing thread lane {role}");
        }
        for name in [
            "load",
            "filter",
            "allgather",
            "backprojection",
            "reduce",
            "store",
            "pfs.read",
            "pfs.write",
        ] {
            assert!(check.has_span(name), "missing span {name}");
        }
    }

    #[test]
    fn comm_spans_carry_measured_bytes() {
        let (geo, store) = setup(8, 16);
        let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        for rank in 0..4u32 {
            // Column size 2: each AllGather sends one block to the peer.
            let ag = report
                .trace
                .stage(rank, ThreadRole::Main, "allgather")
                .unwrap();
            assert!(ag.bytes > 0, "rank {rank} allgather moved no bytes");
            // Per-projection load bytes are exact: Nu * Nv * 4.
            let load = report
                .trace
                .stage(rank, ThreadRole::Filter, "load")
                .unwrap();
            assert_eq!(
                load.bytes,
                (load.count as usize * geo.detector.len() * 4) as u64
            );
        }
    }

    #[test]
    fn ring_metrics_surface_as_counters_and_gauges() {
        let (geo, store) = setup(8, 16);
        let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        for rank in 0..4u32 {
            assert!(report.trace.gauge(rank, "ring.gather.high_water").unwrap() >= 1);
            assert!(report.trace.gauge(rank, "ring.bp.high_water").unwrap() >= 1);
            for name in [
                "ring.gather.push_stalls",
                "ring.gather.pop_stalls",
                "ring.bp.push_stalls",
                "ring.bp.pop_stalls",
            ] {
                assert!(
                    report.trace.counter(rank, name).is_some(),
                    "rank {rank} missing counter {name}"
                );
            }
        }
    }

    #[test]
    fn tiled_bp_matches_untiled_and_traces_tiles() {
        let (geo, store) = setup(8, 16);
        let run_with = |tile: Option<TileConfig>| {
            let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
            cfg.tile = tile;
            cfg.obs = Recorder::trace();
            let output = PfsStore::memory();
            let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
            (download_volume(&output, geo.volume).unwrap(), report)
        };
        let (tiled, report) = run_with(Some(TileConfig::AUTO));
        let (untiled, plain) = run_with(None);
        // Tiling changes scheduling, not bits.
        assert_eq!(tiled.data(), untiled.data());
        // Every rank's back-projection thread attributed per-tile spans.
        for rank in 0..4u32 {
            let t = report
                .trace
                .stage(rank, ThreadRole::Backprojection, "bp.tile")
                .unwrap();
            assert!(t.count >= 1, "rank {rank} recorded no tile spans");
        }
        assert!(plain
            .trace
            .stage(0, ThreadRole::Backprojection, "bp.tile")
            .is_none());
    }

    #[test]
    fn off_recorder_still_reconstructs_correctly() {
        let (geo, store) = setup(8, 16);
        let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        cfg.obs = Recorder::off();
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        assert!(report.trace.is_empty());
        assert_eq!(report.per_rank.len(), 4);
        assert!(report.per_rank.iter().all(|t| t.stages.is_empty()));
        // The reconstruction itself is unaffected.
        let vol = download_volume(&output, geo.volume).unwrap();
        let (reference, _) = run(&geo, &store, 2, 2);
        assert_eq!(vol.data(), reference.data());
    }

    #[test]
    fn model_divergence_reports_every_stage() {
        let (geo, store) = setup(8, 16);
        let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        let div = model_divergence(
            &cfg,
            &report,
            &MachineConfig::abci(),
            &KernelModel::v100_proposed(),
        )
        .unwrap();
        for stage in [
            "load",
            "filter",
            "allgather",
            "backprojection",
            "reduce",
            "store",
            "runtime",
        ] {
            let d = div
                .stage(stage)
                .unwrap_or_else(|| panic!("missing {stage}"));
            assert!(d.predicted_secs >= 0.0);
            assert!(d.observed_secs >= 0.0);
            assert!(d.ratio() >= 0.0);
        }
        assert!(div.to_table().contains("runtime"));
    }

    #[test]
    fn merged_timing_combines_ranks() {
        let (geo, store) = setup(8, 16);
        let (_, report) = run(&geo, &store, 2, 2);
        let merged = report.merged_timing();
        let total: usize = report
            .per_rank
            .iter()
            .filter_map(|t| t.stage("load").map(|s| s.count))
            .sum();
        assert_eq!(merged.stage("load").unwrap().count, total);
        // Every rank loads Np / (R*C) projections.
        assert_eq!(total, geo.num_projections);
    }

    #[test]
    fn live_session_samples_and_reports_progress() {
        let (geo, store) = setup(8, 16);
        let mut cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        cfg.obs = Recorder::trace();
        cfg.live = Some(LiveConfig {
            period: Duration::from_millis(5),
            ..LiveConfig::default()
        });
        let output = PfsStore::memory();
        let report = reconstruct_distributed(&cfg, &store, &output).unwrap();
        let live = report.live.expect("live outcome present");
        assert!(live.snapshots >= 1, "final frame always emitted");
        assert!(
            live.trips.is_empty(),
            "clean run must not trip the watchdog: {:?}",
            live.trips
        );
        assert!(live.write_error.is_none());
        let last = live.last.expect("final frame retained");
        assert_eq!(last.watchdog_trips, 0);
        // All planned stages completed: progress is exactly 1.0 and the
        // ETA has collapsed to zero.
        let progress = last.progress.expect("planned stages yield progress");
        assert!(
            (progress.frac - 1.0).abs() < 1e-9,
            "final progress {}",
            progress.frac
        );
        assert_eq!(progress.eta_ns, 0);
        // Both rings of every rank were sampled.
        assert_eq!(last.rings.len(), 8, "2 rings x 4 ranks");
        // The always-on flight recorder dump is a normal capture: the
        // offline analysis runs on it unchanged.
        let dump = live.flight_dump.expect("flight recorder attached");
        let a = PipelineAnalysis::from_trace(&dump).expect("dump has span events");
        assert!(a.wall_ns > 0);
        assert!(!a.critical_path.is_empty());
    }

    #[test]
    fn live_stage_plan_covers_the_whole_run() {
        let (geo, _) = setup(8, 16);
        let mut cfg = DistConfig::new(geo, RankGrid::new(2, 2).unwrap());
        cfg.live = Some(LiveConfig {
            machine: Some(MachineConfig::abci()),
            kernel: Some(KernelModel::v100_proposed()),
            ..LiveConfig::default()
        });
        let reg = LiveRegistry::new();
        plan_live_stages(&cfg, cfg.live.as_ref().unwrap(), &reg).unwrap();
        // Np = 16, 4 ranks in a 2x2 grid, batch 32: every rank's column
        // share (8 projections) fits one batch.
        assert_eq!(reg.stage("load").planned(), 16);
        assert_eq!(reg.stage("filter").planned(), 16);
        assert_eq!(reg.stage("allgather").planned(), 16);
        assert_eq!(reg.stage("backprojection").planned(), 4);
        assert_eq!(reg.stage("reduce").planned(), 4);
        // RootReduce: only the two row roots store.
        assert_eq!(reg.stage("store").planned(), 2);
        // With machine + kernel set, every planned stage carries a
        // model prediction (aggregate seconds across ranks).
        for s in [
            "load",
            "filter",
            "allgather",
            "backprojection",
            "reduce",
            "store",
        ] {
            assert!(
                reg.stage(s).predicted_secs().is_some(),
                "stage {s} missing prediction"
            );
        }
    }

    #[test]
    fn config_validation() {
        let geo = CbctGeometry::standard(Dims2::new(16, 16), 10, Dims3::cube(8));
        // Np = 10 doesn't divide by 4 ranks.
        let cfg = DistConfig::new(geo.clone(), RankGrid::new(2, 2).unwrap());
        let store = PfsStore::memory();
        assert!(reconstruct_distributed(&cfg, &store, &PfsStore::memory()).is_err());
        // Nz = 8 can't split into 2*8 half-slabs.
        let geo2 = CbctGeometry::standard(Dims2::new(16, 16), 16, Dims3::cube(8));
        let cfg = DistConfig::new(geo2, RankGrid::new(8, 2).unwrap());
        assert!(reconstruct_distributed(&cfg, &store, &PfsStore::memory()).is_err());
    }

    #[test]
    fn missing_projection_fails_cleanly() {
        let geo = CbctGeometry::standard(Dims2::new(16, 16), 8, Dims3::cube(8));
        let cfg = DistConfig::new(geo, RankGrid::new(2, 2).unwrap());
        let empty = PfsStore::memory();
        let err = reconstruct_distributed(&cfg, &empty, &PfsStore::memory());
        assert!(err.is_err());
    }

    #[test]
    fn store_failure_surfaces() {
        let (geo, store) = setup(8, 16);
        let cfg = DistConfig::new(geo, RankGrid::new(2, 2).unwrap());
        let output = PfsStore::new(
            ct_pfs::Backend::Memory,
            ct_pfs::PfsConfig {
                fail_after_bytes: Some(64),
                ..ct_pfs::PfsConfig::default()
            },
        )
        .unwrap();
        assert!(reconstruct_distributed(&cfg, &store, &output).is_err());
    }
}
