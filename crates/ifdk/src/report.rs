//! Machine-readable run reports.
//!
//! Every experiment regenerator (the `bench` crate's table/figure
//! binaries) and the examples emit the same report shape, so
//! EXPERIMENTS.md rows are generated rather than hand-copied.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured (or modelled) experiment datapoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunReport {
    /// Which experiment this belongs to (e.g. `"table4"`, `"fig5a"`).
    pub experiment: String,
    /// Configuration label (e.g. the problem string, GPU count, kernel).
    pub label: String,
    /// Named scalar results (seconds, GUPS, RMSE, ...).
    pub values: BTreeMap<String, f64>,
    /// Free-form notes (substitutions, tolerances, deviations).
    pub notes: Vec<String>,
}

impl RunReport {
    /// Start a report.
    pub fn new(experiment: &str, label: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            label: label.to_string(),
            ..Default::default()
        }
    }

    /// Record a named value (builder style).
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Record a value in place.
    pub fn set(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_string(), value);
    }

    /// Add a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Look a value up.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let mut r = RunReport::new("table4", "512x512x1024->256^3")
            .with("gups", 188.6)
            .with("seconds", 0.35);
        r.note("scaled 8x from the paper's problem");
        assert_eq!(r.get("gups"), Some(188.6));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.notes.len(), 1);
        r.set("gups", 190.0);
        assert_eq!(r.get("gups"), Some(190.0));
    }
}
