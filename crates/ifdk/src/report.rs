//! Machine-readable run reports.
//!
//! Every experiment regenerator (the `bench` crate's table/figure
//! binaries) and the examples emit the same report shape, so
//! EXPERIMENTS.md rows are generated rather than hand-copied.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One measured (or modelled) experiment datapoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunReport {
    /// Which experiment this belongs to (e.g. `"table4"`, `"fig5a"`).
    pub experiment: String,
    /// Configuration label (e.g. the problem string, GPU count, kernel).
    pub label: String,
    /// Named scalar results (seconds, GUPS, RMSE, ...).
    pub values: BTreeMap<String, f64>,
    /// Free-form notes (substitutions, tolerances, deviations).
    pub notes: Vec<String>,
}

impl RunReport {
    /// Start a report.
    pub fn new(experiment: &str, label: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            label: label.to_string(),
            ..Default::default()
        }
    }

    /// Record a named value (builder style).
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Record a value in place.
    pub fn set(&mut self, key: &str, value: f64) {
        self.values.insert(key.to_string(), value);
    }

    /// Add a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Look a value up.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Absorb an observation capture's per-stage aggregates as named
    /// values: for each stage, `{prefix}{stage}.total_secs` (busiest
    /// rank), `.count`, `.max_secs` and `.bytes` (when nonzero), plus
    /// `{prefix}counter.*` sums and `{prefix}gauge.*` maxima — see
    /// `ct_obs::TraceData::summary_values`. Lets the bench/figure
    /// binaries publish measured stage times alongside their modelled
    /// values without hand-copying.
    pub fn fold_observations(&mut self, prefix: &str, data: &ct_obs::TraceData) {
        for (k, v) in data.summary_values(prefix) {
            self.values.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let mut r = RunReport::new("table4", "512x512x1024->256^3")
            .with("gups", 188.6)
            .with("seconds", 0.35);
        r.note("scaled 8x from the paper's problem");
        assert_eq!(r.get("gups"), Some(188.6));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.notes.len(), 1);
        r.set("gups", 190.0);
        assert_eq!(r.get("gups"), Some(190.0));
    }

    #[test]
    fn fold_observations_imports_stage_aggregates() {
        let rec = ct_obs::Recorder::summary();
        {
            let track = rec.track(0, ct_obs::ThreadRole::Main);
            let mut sp = track.span("allgather");
            sp.set_bytes(512);
            drop(sp);
            track.counter_add("ring.push_stalls", 3);
            track.gauge_max("ring.high_water", 7);
        }
        let mut r = RunReport::new("fig7", "2x2");
        r.fold_observations("obs.", &rec.collect());
        assert_eq!(r.get("obs.allgather.count"), Some(1.0));
        assert_eq!(r.get("obs.allgather.bytes"), Some(512.0));
        assert!(r.get("obs.allgather.total_secs").is_some());
        assert_eq!(r.get("obs.counter.ring.push_stalls"), Some(3.0));
        assert_eq!(r.get("obs.gauge.ring.high_water"), Some(7.0));
    }
}
