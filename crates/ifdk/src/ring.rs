//! Bounded circular buffers — the inter-thread queues of an iFDK rank.
//!
//! "Those threads ... execute independently and exchange data with each
//! other using circular buffers" (paper Section 4.1.3, Figure 4a).
//!
//! The implementation lives in [`ct_sync::ring`] so it is written
//! against the workspace's synchronisation facade: compiled normally it
//! wraps `std::sync`, and under `RUSTFLAGS="--cfg loom"` the facade
//! swaps in model-checked primitives and
//! `crates/ct-sync/tests/loom_ring.rs` exhaustively verifies the
//! buffer's blocking/close/drain protocol under every bounded-preemption
//! thread interleaving. This module re-exports the types at their
//! historical path; see [`ct_sync::ring`] for the full API docs.

pub use ct_sync::ring::{RingBuffer, RingMetrics};
