//! Bounded circular buffers — the inter-thread queues of an iFDK rank.
//!
//! "Those threads ... execute independently and exchange data with each
//! other using circular buffers" (paper Section 4.1.3, Figure 4a). The
//! buffer is a classic bounded MPMC queue: producers block when it is
//! full (back-pressure keeps the filtering stage from racing ahead of the
//! GPU), consumers block when it is empty, and closing it wakes everyone
//! so pipelines drain cleanly.
//!
//! Stalls are first-class observations, not just counters: every blocked
//! push or pop records its wait *duration* into a log2 histogram (read it
//! back with [`RingBuffer::metrics`]), and a buffer built with
//! [`RingBuffer::with_wait_spans`] additionally emits a timed
//! `<name>.push_wait` / `<name>.pop_wait` span on the waiting thread's
//! ambient [`ct_obs::current`] track — which is how
//! `ct_obs::analysis` attributes pipeline stalls to specific buffers.

use ct_obs::Hist;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Largest queue length ever reached (occupancy high-water mark).
    high_water: usize,
    /// Push calls that found the buffer full and had to wait at least
    /// once (back-pressure on the producer).
    push_stalls: u64,
    /// Pop calls that found the buffer empty and had to wait at least
    /// once (starvation of the consumer).
    pop_stalls: u64,
    /// Summed nanoseconds producers spent blocked in `push`.
    push_stall_ns: u64,
    /// Summed nanoseconds consumers spent blocked in `pop`.
    pop_stall_ns: u64,
    /// log2 histogram of individual push-stall durations.
    push_stall_hist: Hist,
    /// log2 histogram of individual pop-stall durations.
    pop_stall_hist: Hist,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// `(push_wait, pop_wait)` span names emitted on the ambient track of
    /// a blocked thread; `None` keeps waits as bare metrics.
    wait_spans: Option<(&'static str, &'static str)>,
}

/// A bounded blocking FIFO. Clones share the same buffer.
pub struct RingBuffer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for RingBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> RingBuffer<T> {
    /// Create a buffer holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// Create a buffer that, in addition to the stall metrics, records a
    /// timed span on the blocked thread's [`ct_obs::current`] track for
    /// every stall: `push_wait` names producer-side waits, `pop_wait`
    /// consumer-side ones. Spans carry the stall ordinal as their index.
    /// With no ambient track bound (or the recorder off) the spans cost
    /// nothing.
    pub fn with_wait_spans(
        capacity: usize,
        push_wait: &'static str,
        pop_wait: &'static str,
    ) -> Self {
        Self::build(capacity, Some((push_wait, pop_wait)))
    }

    fn build(capacity: usize, wait_spans: Option<(&'static str, &'static str)>) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::with_capacity(capacity),
                    closed: false,
                    high_water: 0,
                    push_stalls: 0,
                    pop_stalls: 0,
                    push_stall_ns: 0,
                    pop_stall_ns: 0,
                    push_stall_hist: Hist::default(),
                    pop_stall_hist: Hist::default(),
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity,
                wait_spans,
            }),
        }
    }

    /// Capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Current queue length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// True when currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking push. Returns `Err(item)` if the buffer is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.shared.state.lock();
        let mut wait: Option<(Instant, ct_obs::Span)> = None;
        let result = loop {
            if st.closed {
                break Err(item);
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(item);
                st.high_water = st.high_water.max(st.queue.len());
                break Ok(());
            }
            if wait.is_none() {
                st.push_stalls += 1;
                let span = match self.shared.wait_spans {
                    Some((name, _)) => ct_obs::current::span(name).with_index(st.push_stalls - 1),
                    None => ct_obs::Span::disabled(),
                };
                wait = Some((Instant::now(), span));
            }
            self.shared.not_full.wait(&mut st);
        };
        if let Some((started, span)) = wait {
            let ns = started.elapsed().as_nanos() as u64;
            st.push_stall_ns += ns;
            st.push_stall_hist.record(ns);
            drop(span);
        }
        drop(st);
        if result.is_ok() {
            self.shared.not_empty.notify_one();
        }
        result
    }

    /// Blocking pop. Returns `None` once the buffer is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        let mut wait: Option<(Instant, ct_obs::Span)> = None;
        let result = loop {
            if let Some(item) = st.queue.pop_front() {
                break Some(item);
            }
            if st.closed {
                break None;
            }
            if wait.is_none() {
                st.pop_stalls += 1;
                let span = match self.shared.wait_spans {
                    Some((_, name)) => ct_obs::current::span(name).with_index(st.pop_stalls - 1),
                    None => ct_obs::Span::disabled(),
                };
                wait = Some((Instant::now(), span));
            }
            self.shared.not_empty.wait(&mut st);
        };
        if let Some((started, span)) = wait {
            let ns = started.elapsed().as_nanos() as u64;
            st.pop_stall_ns += ns;
            st.pop_stall_hist.record(ns);
            drop(span);
        }
        drop(st);
        if result.is_some() {
            self.shared.not_full.notify_one();
        }
        result
    }

    /// Pop up to `max` items in one call (at least one unless the stream
    /// is finished) — how the BP thread assembles projection batches.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        match self.pop() {
            Some(first) => out.push(first),
            None => return out,
        }
        // Opportunistically take whatever else is already queued.
        let mut st = self.shared.state.lock();
        while out.len() < max {
            match st.queue.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        drop(st);
        self.shared.not_full.notify_all();
        out
    }

    /// Close the buffer: producers fail, consumers drain then see `None`.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.closed = true;
        drop(st);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }

    /// Snapshot of the buffer's occupancy and stall statistics. These are
    /// what an observability layer reads once per pipeline run — the
    /// counters themselves are maintained inside the existing critical
    /// sections, so tracking them costs no extra synchronisation.
    pub fn metrics(&self) -> RingMetrics {
        let st = self.shared.state.lock();
        RingMetrics {
            capacity: self.shared.capacity,
            len: st.queue.len(),
            high_water: st.high_water,
            push_stalls: st.push_stalls,
            pop_stalls: st.pop_stalls,
            push_stall_ns: st.push_stall_ns,
            pop_stall_ns: st.pop_stall_ns,
            push_stall_hist: st.push_stall_hist.clone(),
            pop_stall_hist: st.pop_stall_hist.clone(),
        }
    }
}

/// A point-in-time view of a buffer's occupancy statistics.
///
/// `high_water` close to `capacity` plus a large `push_stalls` means the
/// consumer is the bottleneck (the paper's back-pressure case: filtering
/// races ahead of back-projection); a large `pop_stalls` with a low
/// high-water mark means the producer is. The `*_stall_ns` totals and
/// histograms say how *costly* those stalls were, not just how frequent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RingMetrics {
    /// Configured capacity.
    pub capacity: usize,
    /// Queue length at snapshot time.
    pub len: usize,
    /// Largest queue length ever reached.
    pub high_water: usize,
    /// Push calls that blocked on a full buffer at least once.
    pub push_stalls: u64,
    /// Pop calls that blocked on an empty buffer at least once.
    pub pop_stalls: u64,
    /// Summed nanoseconds producers spent blocked.
    pub push_stall_ns: u64,
    /// Summed nanoseconds consumers spent blocked.
    pub pop_stall_ns: u64,
    /// log2 histogram of individual push-stall durations.
    pub push_stall_hist: Hist,
    /// log2 histogram of individual pop-stall durations.
    pub pop_stall_hist: Hist,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let rb = RingBuffer::new(4);
        rb.push(1).unwrap();
        rb.push(2).unwrap();
        rb.push(3).unwrap();
        assert_eq!(rb.pop(), Some(1));
        assert_eq!(rb.pop(), Some(2));
        assert_eq!(rb.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let rb = RingBuffer::new(4);
        rb.push("a").unwrap();
        rb.close();
        assert_eq!(rb.push("b"), Err("b"));
        assert_eq!(rb.pop(), Some("a"));
        assert_eq!(rb.pop(), None);
    }

    #[test]
    fn producer_blocks_until_consumed() {
        let rb = RingBuffer::new(1);
        rb.push(0u32).unwrap();
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || {
            // This push must block until the main thread pops.
            rb2.push(1).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.len(), 1, "producer should still be blocked");
        assert_eq!(rb.pop(), Some(0));
        handle.join().unwrap();
        assert_eq!(rb.pop(), Some(1));
    }

    #[test]
    fn consumer_blocks_until_produced() {
        let rb = RingBuffer::<u64>::new(2);
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || rb2.pop());
        std::thread::sleep(Duration::from_millis(30));
        rb.push(99).unwrap();
        assert_eq!(handle.join().unwrap(), Some(99));
    }

    #[test]
    fn pop_batch_takes_available() {
        let rb = RingBuffer::new(8);
        for i in 0..5 {
            rb.push(i).unwrap();
        }
        let batch = rb.pop_batch(3);
        assert_eq!(batch, vec![0, 1, 2]);
        let batch = rb.pop_batch(10);
        assert_eq!(batch, vec![3, 4]);
        rb.close();
        assert!(rb.pop_batch(4).is_empty());
        assert!(rb.pop_batch(0).is_empty());
    }

    #[test]
    fn pipeline_transfers_everything() {
        let rb = RingBuffer::new(3);
        let producer = rb.clone();
        let n = 1000u32;
        let handle = std::thread::spawn(move || {
            for i in 0..n {
                producer.push(i).unwrap();
            }
            producer.close();
        });
        let mut got = Vec::new();
        while let Some(x) = rb.pop() {
            got.push(x);
        }
        handle.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let rb = RingBuffer::new(4);
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let rb = rb.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        rb.push(t * 1000 + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rb = rb.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        let mut count = 0;
                        while count < 200 {
                            if let Some(x) = rb.pop() {
                                sum += x;
                                count += 1;
                            }
                        }
                        sum
                    })
                })
                .collect();
            consumers.into_iter().map(|c| c.join().unwrap()).sum()
        });
        let expect: u64 = (0..4u64)
            .map(|t| (0..100).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let rb = RingBuffer::new(8);
        assert_eq!(
            rb.metrics(),
            RingMetrics {
                capacity: 8,
                ..RingMetrics::default()
            }
        );
        rb.push(1).unwrap();
        rb.push(2).unwrap();
        rb.push(3).unwrap();
        assert_eq!(rb.metrics().high_water, 3);
        // Draining does not lower the mark.
        rb.pop().unwrap();
        rb.pop().unwrap();
        assert_eq!(rb.metrics().len, 1);
        assert_eq!(rb.metrics().high_water, 3);
        rb.push(4).unwrap();
        assert_eq!(rb.metrics().high_water, 3, "peak was 3, now only 2 queued");
    }

    #[test]
    fn push_stalls_and_pop_stalls_are_counted_once_per_call() {
        let rb = RingBuffer::new(1);

        // Unblocked traffic: no stalls, no waits.
        rb.push(0u32).unwrap();
        rb.pop().unwrap();
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_stalls), (0, 0));
        assert_eq!((m.push_stall_ns, m.pop_stall_ns), (0, 0));

        // A push into a full buffer stalls exactly once, even though the
        // condvar may wake it spuriously several times.
        rb.push(1).unwrap();
        let rb2 = rb.clone();
        let producer = std::thread::spawn(move || rb2.push(2).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.metrics().push_stalls, 1);
        rb.pop().unwrap();
        producer.join().unwrap();
        assert_eq!(rb.metrics().push_stalls, 1);

        // A pop from an empty buffer waits exactly once.
        rb.pop().unwrap(); // drain item 2
        let rb2 = rb.clone();
        let consumer = std::thread::spawn(move || rb2.pop());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.metrics().pop_stalls, 1);
        rb.push(3).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(3));
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_stalls), (1, 1));
        // Each stall blocked for ~30 ms; the durations must be recorded
        // in the totals and the histograms.
        assert!(m.push_stall_ns >= 1_000_000, "push stall too short: {m:?}");
        assert!(m.pop_stall_ns >= 1_000_000, "pop stall too short: {m:?}");
        assert_eq!(m.push_stall_hist.total(), 1);
        assert_eq!(m.pop_stall_hist.total(), 1);
    }

    #[test]
    fn backpressured_pipeline_reports_stalls() {
        // Producer is much faster than the consumer: the buffer should
        // saturate (high_water == capacity) and most pushes should stall.
        let rb = RingBuffer::new(2);
        let producer = rb.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..50u32 {
                producer.push(i).unwrap();
            }
            producer.close();
        });
        let mut got = 0;
        while rb.pop().is_some() {
            got += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
        handle.join().unwrap();
        assert_eq!(got, 50);
        let m = rb.metrics();
        assert_eq!(m.high_water, 2);
        assert!(m.push_stalls > 0, "fast producer never stalled: {m:?}");
        assert_eq!(
            m.push_stall_hist.total(),
            m.push_stalls,
            "one histogram sample per stall"
        );
        assert!(m.push_stall_ns > 0);
    }

    #[test]
    fn wait_spans_land_on_the_ambient_track() {
        use ct_obs::{Recorder, ThreadRole};

        let rec = Recorder::trace();
        let rb = RingBuffer::with_wait_spans(1, "ring.test.push_wait", "ring.test.pop_wait");

        // Consumer (this thread) waits on an empty buffer with an ambient
        // track bound; producer fills it after a delay.
        let producer = {
            let rb = rb.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                rb.push(7u32).unwrap();
            })
        };
        {
            let track = rec.track(3, ThreadRole::Main);
            let _cur = ct_obs::current::set_current(&track);
            assert_eq!(rb.pop(), Some(7));
        }
        producer.join().unwrap();

        let data = rec.collect();
        let waits: Vec<_> = data
            .events
            .iter()
            .filter(|e| e.name == "ring.test.pop_wait")
            .collect();
        assert_eq!(waits.len(), 1, "one stall, one span: {:?}", data.events);
        assert_eq!(waits[0].rank, 3);
        assert_eq!(waits[0].role, ThreadRole::Main);
        assert_eq!(waits[0].index, Some(0));
        assert!(
            waits[0].dur_ns >= 1_000_000,
            "span must cover the ~20 ms wait"
        );
        let m = rb.metrics();
        assert_eq!(m.pop_stalls, 1);
    }

    #[test]
    fn unnamed_buffers_record_no_spans() {
        use ct_obs::{Recorder, ThreadRole};

        let rec = Recorder::trace();
        let rb = RingBuffer::new(1);
        let producer = {
            let rb = rb.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                rb.push(1u32).unwrap();
            })
        };
        {
            let track = rec.track(0, ThreadRole::Main);
            let _cur = ct_obs::current::set_current(&track);
            assert_eq!(rb.pop(), Some(1));
        }
        producer.join().unwrap();
        assert!(
            rec.collect().events.is_empty(),
            "plain RingBuffer::new must stay span-silent"
        );
        assert_eq!(rb.metrics().pop_stalls, 1, "metrics still count the stall");
    }
}
