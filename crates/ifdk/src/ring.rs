//! Bounded circular buffers — the inter-thread queues of an iFDK rank.
//!
//! "Those threads ... execute independently and exchange data with each
//! other using circular buffers" (paper Section 4.1.3, Figure 4a). The
//! buffer is a classic bounded MPMC queue: producers block when it is
//! full (back-pressure keeps the filtering stage from racing ahead of the
//! GPU), consumers block when it is empty, and closing it wakes everyone
//! so pipelines drain cleanly.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Largest queue length ever reached (occupancy high-water mark).
    high_water: usize,
    /// Push calls that found the buffer full and had to wait at least
    /// once (back-pressure on the producer).
    push_stalls: u64,
    /// Pop calls that found the buffer empty and had to wait at least
    /// once (starvation of the consumer).
    pop_waits: u64,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// A bounded blocking FIFO. Clones share the same buffer.
pub struct RingBuffer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for RingBuffer<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> RingBuffer<T> {
    /// Create a buffer holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be nonzero");
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::with_capacity(capacity),
                    closed: false,
                    high_water: 0,
                    push_stalls: 0,
                    pop_waits: 0,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity,
            }),
        }
    }

    /// Capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Current queue length (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// True when currently empty (racy; diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking push. Returns `Err(item)` if the buffer is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.shared.state.lock();
        let mut stalled = false;
        loop {
            if st.closed {
                return Err(item);
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(item);
                st.high_water = st.high_water.max(st.queue.len());
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            if !stalled {
                stalled = true;
                st.push_stalls += 1;
            }
            self.shared.not_full.wait(&mut st);
        }
    }

    /// Blocking pop. Returns `None` once the buffer is closed *and*
    /// drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        let mut waited = false;
        loop {
            if let Some(item) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            if !waited {
                waited = true;
                st.pop_waits += 1;
            }
            self.shared.not_empty.wait(&mut st);
        }
    }

    /// Pop up to `max` items in one call (at least one unless the stream
    /// is finished) — how the BP thread assembles projection batches.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        match self.pop() {
            Some(first) => out.push(first),
            None => return out,
        }
        // Opportunistically take whatever else is already queued.
        let mut st = self.shared.state.lock();
        while out.len() < max {
            match st.queue.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        drop(st);
        self.shared.not_full.notify_all();
        out
    }

    /// Close the buffer: producers fail, consumers drain then see `None`.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        st.closed = true;
        drop(st);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }

    /// Snapshot of the buffer's occupancy and stall statistics. These are
    /// what an observability layer reads once per pipeline run — the
    /// counters themselves are maintained inside the existing critical
    /// sections, so tracking them costs no extra synchronisation.
    pub fn metrics(&self) -> RingMetrics {
        let st = self.shared.state.lock();
        RingMetrics {
            capacity: self.shared.capacity,
            len: st.queue.len(),
            high_water: st.high_water,
            push_stalls: st.push_stalls,
            pop_waits: st.pop_waits,
        }
    }
}

/// A point-in-time view of a buffer's occupancy statistics.
///
/// `high_water` close to `capacity` plus a large `push_stalls` means the
/// consumer is the bottleneck (the paper's back-pressure case: filtering
/// races ahead of back-projection); a large `pop_waits` with a low
/// high-water mark means the producer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingMetrics {
    /// Configured capacity.
    pub capacity: usize,
    /// Queue length at snapshot time.
    pub len: usize,
    /// Largest queue length ever reached.
    pub high_water: usize,
    /// Push calls that blocked on a full buffer at least once.
    pub push_stalls: u64,
    /// Pop calls that blocked on an empty buffer at least once.
    pub pop_waits: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let rb = RingBuffer::new(4);
        rb.push(1).unwrap();
        rb.push(2).unwrap();
        rb.push(3).unwrap();
        assert_eq!(rb.pop(), Some(1));
        assert_eq!(rb.pop(), Some(2));
        assert_eq!(rb.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let rb = RingBuffer::new(4);
        rb.push("a").unwrap();
        rb.close();
        assert_eq!(rb.push("b"), Err("b"));
        assert_eq!(rb.pop(), Some("a"));
        assert_eq!(rb.pop(), None);
    }

    #[test]
    fn producer_blocks_until_consumed() {
        let rb = RingBuffer::new(1);
        rb.push(0u32).unwrap();
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || {
            // This push must block until the main thread pops.
            rb2.push(1).unwrap();
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.len(), 1, "producer should still be blocked");
        assert_eq!(rb.pop(), Some(0));
        handle.join().unwrap();
        assert_eq!(rb.pop(), Some(1));
    }

    #[test]
    fn consumer_blocks_until_produced() {
        let rb = RingBuffer::<u64>::new(2);
        let rb2 = rb.clone();
        let handle = std::thread::spawn(move || rb2.pop());
        std::thread::sleep(Duration::from_millis(30));
        rb.push(99).unwrap();
        assert_eq!(handle.join().unwrap(), Some(99));
    }

    #[test]
    fn pop_batch_takes_available() {
        let rb = RingBuffer::new(8);
        for i in 0..5 {
            rb.push(i).unwrap();
        }
        let batch = rb.pop_batch(3);
        assert_eq!(batch, vec![0, 1, 2]);
        let batch = rb.pop_batch(10);
        assert_eq!(batch, vec![3, 4]);
        rb.close();
        assert!(rb.pop_batch(4).is_empty());
        assert!(rb.pop_batch(0).is_empty());
    }

    #[test]
    fn pipeline_transfers_everything() {
        let rb = RingBuffer::new(3);
        let producer = rb.clone();
        let n = 1000u32;
        let handle = std::thread::spawn(move || {
            for i in 0..n {
                producer.push(i).unwrap();
            }
            producer.close();
        });
        let mut got = Vec::new();
        while let Some(x) = rb.pop() {
            got.push(x);
        }
        handle.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer() {
        let rb = RingBuffer::new(4);
        let total: u64 = std::thread::scope(|s| {
            for t in 0..4u64 {
                let rb = rb.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        rb.push(t * 1000 + i).unwrap();
                    }
                });
            }
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rb = rb.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        let mut count = 0;
                        while count < 200 {
                            if let Some(x) = rb.pop() {
                                sum += x;
                                count += 1;
                            }
                        }
                        sum
                    })
                })
                .collect();
            consumers.into_iter().map(|c| c.join().unwrap()).sum()
        });
        let expect: u64 = (0..4u64)
            .map(|t| (0..100).map(|i| t * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let rb = RingBuffer::new(8);
        assert_eq!(
            rb.metrics(),
            RingMetrics {
                capacity: 8,
                ..RingMetrics::default()
            }
        );
        rb.push(1).unwrap();
        rb.push(2).unwrap();
        rb.push(3).unwrap();
        assert_eq!(rb.metrics().high_water, 3);
        // Draining does not lower the mark.
        rb.pop().unwrap();
        rb.pop().unwrap();
        assert_eq!(rb.metrics().len, 1);
        assert_eq!(rb.metrics().high_water, 3);
        rb.push(4).unwrap();
        assert_eq!(rb.metrics().high_water, 3, "peak was 3, now only 2 queued");
    }

    #[test]
    fn push_stalls_and_pop_waits_are_counted_once_per_call() {
        let rb = RingBuffer::new(1);

        // Unblocked traffic: no stalls, no waits.
        rb.push(0u32).unwrap();
        rb.pop().unwrap();
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_waits), (0, 0));

        // A push into a full buffer stalls exactly once, even though the
        // condvar may wake it spuriously several times.
        rb.push(1).unwrap();
        let rb2 = rb.clone();
        let producer = std::thread::spawn(move || rb2.push(2).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.metrics().push_stalls, 1);
        rb.pop().unwrap();
        producer.join().unwrap();
        assert_eq!(rb.metrics().push_stalls, 1);

        // A pop from an empty buffer waits exactly once.
        rb.pop().unwrap(); // drain item 2
        let rb2 = rb.clone();
        let consumer = std::thread::spawn(move || rb2.pop());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rb.metrics().pop_waits, 1);
        rb.push(3).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(3));
        let m = rb.metrics();
        assert_eq!((m.push_stalls, m.pop_waits), (1, 1));
    }

    #[test]
    fn backpressured_pipeline_reports_stalls() {
        // Producer is much faster than the consumer: the buffer should
        // saturate (high_water == capacity) and most pushes should stall.
        let rb = RingBuffer::new(2);
        let producer = rb.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..50u32 {
                producer.push(i).unwrap();
            }
            producer.close();
        });
        let mut got = 0;
        while rb.pop().is_some() {
            got += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
        handle.join().unwrap();
        assert_eq!(got, 50);
        let m = rb.metrics();
        assert_eq!(m.high_water, 2);
        assert!(m.push_stalls > 0, "fast producer never stalled: {m:?}");
    }
}
