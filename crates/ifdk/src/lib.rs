//! # iFDK — instant high-resolution FDK image reconstruction
//!
//! A Rust reproduction of *"iFDK: A Scalable Framework for Instant
//! High-resolution Image Reconstruction"* (Chen, Wahib, Takizawa, Takano,
//! Matsuoka — SC '19): cone-beam CT reconstruction with the FDK algorithm,
//! from a single in-memory call up to a fully distributed pipeline over a
//! 2D grid of ranks with MPI-style collectives and PFS-style I/O.
//!
//! ## Quick start
//!
//! ```
//! use ct_core::{CbctGeometry, Dims2, Dims3};
//! use ct_core::phantom::Phantom;
//! use ct_core::forward::project_all_analytic;
//! use ifdk::{reconstruct, ReconOptions};
//!
//! // Scan a Shepp-Logan phantom (32 projections of 64x64) ...
//! let geo = CbctGeometry::standard(Dims2::new(64, 64), 32, Dims3::cube(32));
//! let projections = project_all_analytic(&geo, &Phantom::shepp_logan(10.0));
//!
//! // ... and reconstruct a 32^3 volume.
//! let volume = reconstruct(&geo, &projections, &ReconOptions::default()).unwrap();
//! assert_eq!(volume.dims(), Dims3::cube(32));
//! ```
//!
//! ## Crate map
//!
//! * [`reconstruct`] / [`reconstruct_pipelined`] — single-node FDK
//!   (filtering on a [`ct_par::Pool`], back-projection with the paper's
//!   proposed kernel; the pipelined variant overlaps the two stages
//!   through a circular buffer exactly like one iFDK rank does).
//! * [`grid`] — the 2D rank-grid decomposition (paper Section 4.1.1).
//! * [`ring`] — the bounded circular buffers connecting pipeline threads
//!   (Section 4.1.3, Figure 4a).
//! * [`distributed`] — the full framework: per-rank
//!   Filter/Main/Back-projection threads, per-projection AllGather within
//!   columns, one Reduce per row, PFS in/out (Sections 4.1.1-4.1.4). The
//!   whole path is instrumented through `ct_obs` ([`DistConfig`] carries
//!   the recorder); [`model_divergence`] compares a measured run against
//!   the paper's analytic model (Eqs. 8-19).
//! * [`report`] — machine-readable run reports shared by the examples,
//!   benchmarks and EXPERIMENTS.md; `RunReport::fold_observations`
//!   absorbs a `ct_obs` capture's per-stage aggregates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributed;
pub mod grid;
pub mod plan;
pub mod report;
pub mod ring;
pub mod single;
pub mod streaming;

pub use distributed::{
    model_divergence, reconstruct_distributed, DistConfig, DistReport, LiveConfig,
};
pub use grid::RankGrid;
pub use plan::{plan_rank_grid, GridChoice};
pub use ring::RingBuffer;
pub use single::{reconstruct, reconstruct_pipelined, reconstruct_pipelined_live, ReconOptions};
pub use streaming::StreamingReconstructor;
