//! Workspace call graph, name-resolved and deliberately conservative.
//!
//! Path calls (`mod::f(..)`, `Type::assoc(..)`) resolve through the
//! file's `use` map, `crate`/`self`/`super`/`Self` heads, glob imports
//! and the module chain. Method calls (`.m(..)`) cannot be typed by a
//! token-level analyzer, so every method named `m` whose non-`self`
//! arity matches the call's argument count — in a crate the caller's
//! crate (transitively) depends on — becomes an edge; the graph
//! over-approximates, never under-approximates, within the workspace. Calls that resolve to nothing are external (std or
//! dependencies) and out of the soundness envelope by design.
//! Test-only (`#[cfg(test)]`, `#[test]`) and compiled-out
//! (`#[cfg(loom)]`) functions are not nodes.

use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub struct CallGraph {
    /// `edges[f]` = call targets of fn `f`, with the call site's byte
    /// offset in the caller's masked source (so passes can test call
    /// sites against byte ranges like guard scopes; [`line_of`] maps an
    /// offset back to a 1-based line for reporting).
    pub edges: Vec<Vec<(usize, usize)>>,
}

/// Rust keywords that look like `ident (` in expression position.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "else", "in", "move", "fn", "as",
    "break", "continue", "where", "impl", "dyn", "ref", "mut", "box", "await", "unsafe",
];

impl CallGraph {
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut by_qual: BTreeMap<&str, usize> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut assoc: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            by_qual.insert(f.qual.as_str(), i);
            let crate_ident = f.module.first().map(String::as_str).unwrap_or("");
            if f.has_self {
                methods.entry(f.name.as_str()).or_default().push(i);
            }
            match &f.self_type {
                Some(t) => assoc
                    .entry((crate_ident, t.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i),
                None => free
                    .entry((crate_ident, f.name.as_str()))
                    .or_default()
                    .push(i),
            }
        }

        let mut edges = vec![Vec::new(); ws.fns.len()];
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            let mut out: BTreeSet<(usize, usize)> = BTreeSet::new();
            for call in extract_calls(masked, b0, b1) {
                match call.kind {
                    CallKind::Method { name, args } => {
                        // A method call in crate C can only dispatch to
                        // an impl in C's declared dependency cone — a
                        // crate C does not depend on is not in scope.
                        let caller_crate = file.crate_idx;
                        for &t in methods.get(name.as_str()).into_iter().flatten() {
                            let callee_crate = ws.files[ws.fns[t].file].crate_idx;
                            if ws.fns[t].arity == args
                                && ws.dep_closure[caller_crate].contains(&callee_crate)
                            {
                                out.insert((t, call.at));
                            }
                        }
                    }
                    CallKind::Path { segs } => {
                        for t in resolve_path(ws, f.file, i, &segs, &by_qual, &assoc, &free) {
                            out.insert((t, call.at));
                        }
                    }
                }
            }
            edges[i] = out.into_iter().collect();
        }
        CallGraph { edges }
    }

    /// BFS over the graph from `roots` (fn indices); returns, for every
    /// reachable fn, the predecessor on a shortest path (roots map to
    /// themselves).
    pub fn reach(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(r) {
                e.insert(r);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &(t, _) in &self.edges[f] {
                if let std::collections::btree_map::Entry::Vacant(e) = pred.entry(t) {
                    e.insert(f);
                    queue.push_back(t);
                }
            }
        }
        pred
    }
}

/// Shortest call chain `root -> ... -> target` as qualified names.
pub fn chain(ws: &Workspace, pred: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
    let mut path = vec![target];
    let mut cur = target;
    while let Some(&p) = pred.get(&cur) {
        if p == cur {
            break;
        }
        path.push(p);
        cur = p;
    }
    path.reverse();
    path.into_iter().map(|i| ws.fns[i].qual.clone()).collect()
}

enum CallKind {
    Method { name: String, args: usize },
    Path { segs: Vec<String> },
}

struct CallSite {
    at: usize,
    kind: CallKind,
}

/// Token-scan one fn body for call sites.
fn extract_calls(masked: &str, b0: usize, b1: usize) -> Vec<CallSite> {
    let b = masked.as_bytes();
    let end = b1.min(b.len());
    let mut out = Vec::new();
    let mut i = b0;
    while i < end {
        let c = b[i];
        // Method call: `.name` [`::<..>`] `(`.
        if c == b'.' && i + 1 < end && is_ident_start(b[i + 1]) {
            let at = i;
            let mut j = i + 1;
            while j < end && is_ident(b[j]) {
                j += 1;
            }
            let name = &masked[i + 1..j];
            let mut k = skip_ws(b, j, end);
            k = skip_turbofish(b, k, end);
            if k < end && b[k] == b'(' && !NON_CALLS.contains(&name) {
                out.push(CallSite {
                    at,
                    kind: CallKind::Method {
                        name: name.to_string(),
                        args: count_args(b, k, end),
                    },
                });
            }
            i = j;
            continue;
        }
        // Path or plain call: `a::b::f` [`::<..>`] `(`, not preceded by
        // `.` (method) or an ident char (mid-token).
        if is_ident_start(c) && (i == b0 || (!is_ident(b[i - 1]) && b[i - 1] != b'.')) {
            let at = i;
            let mut segs = Vec::new();
            let mut j = i;
            loop {
                let s = j;
                while j < end && is_ident(b[j]) {
                    j += 1;
                }
                if j == s {
                    break;
                }
                segs.push(masked[s..j].to_string());
                let k = skip_ws(b, j, end);
                if k + 1 < end && b[k] == b':' && b[k + 1] == b':' {
                    let n = skip_ws(b, k + 2, end);
                    if n < end && b[n] == b'<' {
                        // Turbofish ends the path; leave `j` at `::` so
                        // `skip_turbofish` below consumes it.
                        j = k;
                        break;
                    }
                    if n < end && is_ident_start(b[n]) {
                        j = n;
                        continue;
                    }
                }
                break;
            }
            let k = skip_ws(b, j, end);
            let k = skip_turbofish(b, k, end);
            let prev_word_is_fn = prev_word(masked, at) == Some("fn");
            if k < end
                && b[k] == b'('
                && !prev_word_is_fn
                && !segs.iter().any(|s| NON_CALLS.contains(&s.as_str()))
            {
                out.push(CallSite {
                    at,
                    kind: CallKind::Path { segs },
                });
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// Resolve a path call in the context of `file`/`caller` to candidate
/// fn indices. Unresolvable paths are external: no edges.
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    ws: &Workspace,
    file: usize,
    caller: usize,
    segs: &[String],
    by_qual: &BTreeMap<&str, usize>,
    assoc: &BTreeMap<(&str, &str, &str), Vec<usize>>,
    free: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let f = &ws.fns[caller];
    let module = &f.module;
    let mut candidates: Vec<Vec<String>> = Vec::new();
    let head = segs[0].as_str();
    match head {
        "crate" => {
            let mut p = vec![module[0].clone()];
            p.extend(segs[1..].iter().cloned());
            candidates.push(p);
        }
        "self" => {
            let mut p = module.clone();
            p.extend(segs[1..].iter().cloned());
            candidates.push(p);
        }
        "super" => {
            let mut base = module.clone();
            let mut rest = segs;
            while rest.first().map(String::as_str) == Some("super") {
                base.pop();
                rest = &rest[1..];
            }
            base.extend(rest.iter().cloned());
            candidates.push(base);
        }
        "Self" => {
            if let Some(t) = &f.self_type {
                let mut p = module.clone();
                p.push(t.clone());
                p.extend(segs[1..].iter().cloned());
                candidates.push(p);
            }
        }
        _ => {
            // Import binding for the first segment.
            for (name, path) in &ws.files[file].imports {
                if name == head {
                    let mut p = path.clone();
                    p.extend(segs[1..].iter().cloned());
                    candidates.push(p);
                }
            }
            // A workspace (or external) crate ident.
            if ws.crate_idents.contains(head) {
                candidates.push(segs.to_vec());
            }
            // Relative to the current module and its ancestors.
            for depth in (1..=module.len()).rev() {
                let mut p = module[..depth].to_vec();
                p.extend(segs.iter().cloned());
                candidates.push(p);
            }
            // Glob imports.
            for g in &ws.files[file].globs {
                let mut p = g.clone();
                p.extend(segs.iter().cloned());
                candidates.push(p);
            }
        }
    }

    let mut out = Vec::new();
    for cand in &candidates {
        let qual = cand.join("::");
        if let Some(&t) = by_qual.get(qual.as_str()) {
            out.push(t);
            continue;
        }
        // Re-export fallbacks: match by (crate, Type, fn) or (crate, fn)
        // ignoring the module in between (`pub use volume::Volume`).
        if cand.len() >= 3 && ws.crate_idents.contains(&cand[0]) {
            let key = (
                cand[0].as_str(),
                cand[cand.len() - 2].as_str(),
                cand[cand.len() - 1].as_str(),
            );
            if let Some(v) = assoc.get(&key) {
                out.extend(v.iter().copied());
                continue;
            }
        }
        if cand.len() == 2 && ws.crate_idents.contains(&cand[0]) {
            if let Some(v) = free.get(&(cand[0].as_str(), cand[1].as_str())) {
                out.extend(v.iter().copied());
            }
        }
    }
    // Last resort for a bare `f(...)`: any free fn named `f` in the same
    // crate (sibling modules re-exported or pub(crate)-visible). This
    // over-approximates, which is the safe direction.
    if out.is_empty() && segs.len() == 1 {
        if let Some(m0) = module.first() {
            if let Some(v) = free.get(&(m0.as_str(), segs[0].as_str())) {
                out.extend(v.iter().copied());
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Count call arguments at the `(` at `open`: top-level commas + 1.
/// Closure parameter lists (`|a, b|`) and turbofish generics are
/// skipped so their commas do not split arguments.
fn count_args(b: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut saw_token = false;
    let mut trailing = false;
    let mut i = open;
    while i < end {
        let c = b[i];
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if c == b')' && depth == 0 {
                    break;
                }
            }
            b':' if i + 2 < end && b[i + 1] == b':' && b[i + 2] == b'<' => {
                // Turbofish inside an argument expression.
                angle += 1;
                i += 3;
                continue;
            }
            b'<' if angle > 0 => angle += 1,
            b'>' if angle > 0 => angle -= 1,
            b'|' if depth == 1 => {
                if b.get(i + 1) == Some(&b'|') {
                    i += 2; // `||` — logical or, or an empty closure head
                    continue;
                }
                // Closure head: skip to the matching `|`.
                let mut j = i + 1;
                while j < end && b[j] != b'|' && b[j] != b'\n' {
                    j += 1;
                }
                i = (j + 1).min(end);
                saw_token = true;
                trailing = false;
                continue;
            }
            b',' if depth == 1 && angle == 0 => {
                commas += 1;
                trailing = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        if i != open && !c.is_ascii_whitespace() {
            saw_token = true;
            trailing = false;
        }
        i += 1;
    }
    if !saw_token {
        return 0;
    }
    commas + 1 - usize::from(trailing)
}

fn skip_turbofish(b: &[u8], mut i: usize, end: usize) -> usize {
    if i + 2 < end && b[i] == b':' && b[i + 1] == b':' {
        let k = skip_ws(b, i + 2, end);
        if k < end && b[k] == b'<' {
            let mut depth = 0i32;
            i = k;
            while i < end {
                match b[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            return skip_ws(b, i + 1, end);
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    i
}

fn skip_ws(b: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// The word immediately before byte `at`, if any (used to skip nested
/// `fn name(` declarations).
fn prev_word(s: &str, at: usize) -> Option<&str> {
    let b = s.as_bytes();
    let mut j = at;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let e = j;
    while j > 0 && is_ident(b[j - 1]) {
        j -= 1;
    }
    (j < e).then(|| &s[j..e])
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

pub fn line_of(s: &str, at: usize) -> usize {
    s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calls(src: &str) -> Vec<String> {
        extract_calls(src, 0, src.len())
            .into_iter()
            .map(|c| match c.kind {
                CallKind::Method { name, args } => format!(".{name}/{args}"),
                CallKind::Path { segs } => segs.join("::"),
            })
            .collect()
    }

    #[test]
    fn method_and_path_calls_are_extracted() {
        let got = calls("{ let x = pair::SlabPair::new(nz); x.decompose(1, 2); free(); }");
        assert!(got.contains(&"pair::SlabPair::new".to_string()));
        assert!(got.contains(&".decompose/2".to_string()));
        assert!(got.contains(&"free".to_string()));
    }

    #[test]
    fn keywords_macros_and_fn_decls_are_not_calls() {
        let got = calls("{ if (a) { return (b); } vec![1]; fn helper(x: u8) {} helper(1); }");
        assert_eq!(got, vec!["helper".to_string()]);
    }

    #[test]
    fn closure_commas_do_not_split_args() {
        let got = calls("{ items.sort_by(|a, b| a.cmp(b)); acc.fold(0, |s, x| s + x); }");
        assert!(got.contains(&".sort_by/1".to_string()), "{got:?}");
        assert!(got.contains(&".fold/2".to_string()), "{got:?}");
    }

    #[test]
    fn turbofish_is_skipped() {
        let got = calls("{ parse::<u32>(s); v.collect::<Vec<u8>>(); }");
        assert!(got.contains(&"parse".to_string()), "{got:?}");
        assert!(got.contains(&".collect/0".to_string()), "{got:?}");
    }

    #[test]
    fn empty_and_trailing_comma_arg_counts() {
        let got = calls("{ a.f(); b.g(x,); c.h(x, y); }");
        assert!(got.contains(&".f/0".to_string()));
        assert!(got.contains(&".g/1".to_string()), "{got:?}");
        assert!(got.contains(&".h/2".to_string()));
    }

    #[test]
    fn calls_inside_macro_arguments_still_become_edges() {
        // Macro bodies are not expanded; the token scan reads through
        // them, so the macro itself is never an edge but a call spelled
        // out in its arguments is — over-approximation, the safe
        // direction for reachability.
        let got = calls("{ format!(\"x {}\", compute()); write_all!(sink); }");
        assert!(!got.contains(&"format".to_string()), "{got:?}");
        assert!(!got.contains(&"write_all".to_string()), "{got:?}");
        assert!(got.contains(&"compute".to_string()), "{got:?}");
    }

    /// Write `files` under a temp dir, load it as a workspace, build
    /// the graph. `tag` keeps parallel tests from sharing a directory.
    fn graph_fixture(tag: &str, files: &[(&str, &str)]) -> (Workspace, CallGraph) {
        let dir = std::env::temp_dir().join(format!("xtask-cg-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, content) in files {
            let p = dir.join(rel);
            std::fs::create_dir_all(p.parent().expect("rel path has a parent"))
                .expect("fixture dir");
            std::fs::write(p, content).expect("fixture file");
        }
        let ws = crate::workspace::load(&dir).expect("fixture workspace loads");
        std::fs::remove_dir_all(&dir).ok();
        let graph = CallGraph::build(&ws);
        (ws, graph)
    }

    fn fn_idx(ws: &Workspace, qual: &str) -> usize {
        ws.fns
            .iter()
            .position(|f| f.qual == qual)
            .unwrap_or_else(|| panic!("fn {qual} not found"))
    }

    fn targets(ws: &Workspace, graph: &CallGraph, from: &str) -> Vec<String> {
        graph.edges[fn_idx(ws, from)]
            .iter()
            .map(|&(t, _)| ws.fns[t].qual.clone())
            .collect()
    }

    #[test]
    fn cross_crate_use_resolves_and_dep_cone_limits_methods() {
        let (ws, graph) = graph_fixture(
            "depcone",
            &[
                ("crates/base/Cargo.toml", "[package]\nname = \"base\"\n"),
                (
                    "crates/base/src/lib.rs",
                    "pub mod util {\n    pub fn helper() -> u32 { 1 }\n}\n\
                     pub struct Gadget;\nimpl Gadget {\n    pub fn gulp(&self, x: u32) -> u32 { x }\n}\n",
                ),
                ("crates/iso/Cargo.toml", "[package]\nname = \"iso\"\n"),
                (
                    "crates/iso/src/lib.rs",
                    "pub struct Island;\nimpl Island {\n    pub fn gulp(&self, x: u32) -> u32 { x + 1 }\n}\n",
                ),
                (
                    "crates/app/Cargo.toml",
                    "[package]\nname = \"app\"\n\n[dependencies]\nbase = { path = \"../base\" }\n",
                ),
                (
                    "crates/app/src/lib.rs",
                    "use base::util::helper;\n\npub fn run(g: &base::Gadget) -> u32 {\n    helper() + g.gulp(2)\n}\n",
                ),
            ],
        );
        let got = targets(&ws, &graph, "app::run");
        // The `use`-imported path call resolves across the crate edge.
        assert!(got.contains(&"base::util::helper".to_string()), "{got:?}");
        // `.gulp(_)` dispatches into the dependency cone only: `base`
        // is a declared dep of `app`, `iso` is not.
        assert!(got.contains(&"base::Gadget::gulp".to_string()), "{got:?}");
        assert!(!got.contains(&"iso::Island::gulp".to_string()), "{got:?}");
    }

    #[test]
    fn shadowed_name_over_approximates_to_both_candidates() {
        // `helper` is both `use`-imported and defined locally; a
        // token-level resolver cannot know which one the compiler
        // picks, so the graph keeps both edges.
        let (ws, graph) = graph_fixture(
            "shadow",
            &[
                ("crates/dep/Cargo.toml", "[package]\nname = \"dep\"\n"),
                ("crates/dep/src/lib.rs", "pub fn helper() -> u32 { 1 }\n"),
                (
                    "crates/app/Cargo.toml",
                    "[package]\nname = \"app\"\n\n[dependencies]\ndep = { path = \"../dep\" }\n",
                ),
                (
                    "crates/app/src/lib.rs",
                    "use dep::helper;\n\npub fn helper_local() -> u32 { 2 }\n\
                     pub fn helper() -> u32 { helper_local() }\n\
                     pub fn run() -> u32 { helper() }\n",
                ),
            ],
        );
        let got = targets(&ws, &graph, "app::run");
        assert!(got.contains(&"dep::helper".to_string()), "{got:?}");
        assert!(got.contains(&"app::helper".to_string()), "{got:?}");
    }

    #[test]
    fn reachability_walks_nested_mod_chains() {
        let (ws, graph) = graph_fixture(
            "reach",
            &[
                ("crates/solo/Cargo.toml", "[package]\nname = \"solo\"\n"),
                (
                    "crates/solo/src/lib.rs",
                    "pub mod outer {\n    pub mod inner {\n        pub fn leaf() -> u32 { 3 }\n    }\n    pub fn mid() -> u32 { inner::leaf() }\n}\n\
                     pub fn entry() -> u32 { outer::mid() }\n",
                ),
            ],
        );
        let root = fn_idx(&ws, "solo::entry");
        let pred = graph.reach(&[root]);
        let leaf = fn_idx(&ws, "solo::outer::inner::leaf");
        assert!(pred.contains_key(&leaf), "leaf not reached");
        let chain = chain(&ws, &pred, leaf);
        assert_eq!(
            chain,
            vec![
                "solo::entry".to_string(),
                "solo::outer::mid".to_string(),
                "solo::outer::inner::leaf".to_string(),
            ]
        );
    }
}
