//! Guard-scope tracking over masked function bodies.
//!
//! The lock-discipline pass needs to know, for every byte of a function
//! body, which lock guards are live there. A token-level analyzer
//! cannot type expressions, so a *guard* is recognized syntactically: a
//! zero-argument `.lock()`, `.read()` or `.write()` call (trailing
//! adapters like `.unwrap_or_else(..)` are tolerated — the std mutex
//! poison dance). Its liveness is:
//!
//! * **bound** (`let [mut] g = recv.lock();`): from the call to the
//!   earliest of a `drop(g)` naming the *same* binding or the end of
//!   the enclosing block. Shadowing (`let g = a.lock(); let g =
//!   b.lock();`) does **not** end the first guard — both stay live, as
//!   in Rust — and a later `drop(g)` closes only the latest shadow
//!   whose scope contains it. An early `return` inside a branch does
//!   not shorten the scope either: the branch may not execute, so
//!   sites after it in the same block still run under the guard.
//! * **temporary** (`recv.lock().field += 1;`): to the end of the
//!   statement (the next `;` at bracket depth zero, bounded by the
//!   enclosing block).
//!
//! Guards that escape their function — returned from guard-helper fns
//! like `fn state(&self) -> MutexGuard<..> { self.m.lock() }` — are
//! *not* tracked into the caller; that is a documented hole in the
//! soundness envelope (DESIGN §6c).
//!
//! The module also extracts `Condvar` wait sites (`.wait(..)` /
//! `.wait_timeout(..)` method calls) and answers the one question the
//! wait-without-loop rule asks: is this site syntactically inside a
//! `while` or `loop` block of the same function?

/// One recognized guard acquisition and its live byte range.
#[derive(Clone, Debug)]
pub struct Guard {
    /// Binding name (`let g = ..`), or `None` for a temporary guard.
    pub name: Option<String>,
    /// Normalized receiver of the lock call (`self.shared.state`).
    pub receiver: String,
    /// Byte offset of the `.lock()` / `.read()` / `.write()` dot.
    pub at: usize,
    /// Liveness range: `at .. end` (end exclusive).
    pub end: usize,
}

impl Guard {
    /// Is byte offset `pos` inside this guard's live range (strictly
    /// after the acquisition itself)?
    pub fn covers(&self, pos: usize) -> bool {
        pos > self.at && pos < self.end
    }
}

/// A `.wait(..)` / `.wait_timeout(..)` method-call site.
#[derive(Debug)]
pub struct WaitSite {
    /// Byte offset of the `.wait` dot.
    pub at: usize,
    /// The raw argument text between the call's parentheses.
    pub args: String,
    /// Is the site syntactically inside a `while`/`loop` block?
    pub in_loop: bool,
}

const GUARD_CALLS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Extract every guard scope in the body span `b0..b1` of `masked`.
pub fn guard_scopes(masked: &str, b0: usize, b1: usize) -> Vec<Guard> {
    let b = masked.as_bytes();
    let end = b1.min(b.len());
    let mut out: Vec<Guard> = Vec::new();
    for needle in GUARD_CALLS {
        let mut from = b0;
        while let Some(p) = masked[from..end].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let (recv_start, receiver) = receiver_before(masked, b0, at);
            if receiver.is_empty() {
                continue; // `..range` or stray text, not a method call
            }
            let name = binding_name(masked, b0, recv_start);
            let scope_end = match name {
                Some(_) => block_end(b, at, end),
                None => statement_end(b, at, end),
            };
            out.push(Guard {
                name,
                receiver,
                at,
                end: scope_end,
            });
        }
    }
    // `drop(g)` closes the *latest* shadow of `g` whose scope contains
    // the drop — matching Rust, where `drop` sees the visible binding.
    let mut dp = b0;
    while let Some(p) = masked[dp..end].find("drop") {
        let at = dp + p;
        dp = at + 4;
        if at > b0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let Some(dropped) = drop_argument(masked, at + 4, end) else {
            continue;
        };
        let mut best: Option<usize> = None;
        for (i, g) in out.iter().enumerate() {
            if g.name.as_deref() == Some(dropped.as_str())
                && g.covers(at)
                && best.is_none_or(|b| out[b].at < g.at)
            {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            out[i].end = at;
        }
    }
    out.sort_by_key(|g| g.at);
    out
}

/// Extract `.wait(` / `.wait_timeout(` sites with their loop context.
pub fn wait_sites(masked: &str, b0: usize, b1: usize) -> Vec<WaitSite> {
    let b = masked.as_bytes();
    let end = b1.min(b.len());
    let mut out = Vec::new();
    for needle in [".wait(", ".wait_timeout("] {
        let mut from = b0;
        while let Some(p) = masked[from..end].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let open = at + needle.len() - 1;
            let close = matching_close(b, open, end);
            out.push(WaitSite {
                at,
                args: masked[open + 1..close.min(end)].to_string(),
                in_loop: in_loop(masked, b0, at),
            });
        }
    }
    out.sort_by_key(|w| w.at);
    out
}

/// Does `args` mention `name` as a standalone word? Used for the
/// condvar exception: `cv.wait(&mut g)` releases `g`'s own mutex.
pub fn args_name_guard(args: &str, name: &str) -> bool {
    let b = args.as_bytes();
    let mut from = 0usize;
    while let Some(p) = args[from..].find(name) {
        let at = from + p;
        from = at + name.len();
        let before = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let e = at + name.len();
        let after = e >= args.len() || !(b[e].is_ascii_alphanumeric() || b[e] == b'_');
        if before && after {
            return true;
        }
    }
    false
}

/// Walk the receiver expression backwards from the dot at `at`:
/// identifier segments joined by `.`, whitespace between tokens
/// tolerated (multi-line builder chains). Returns the receiver's start
/// offset and its normalized (whitespace-free) text; empty when the
/// receiver is not a plain place expression (e.g. ends with `)`).
fn receiver_before(masked: &str, b0: usize, at: usize) -> (usize, String) {
    let b = masked.as_bytes();
    let mut segs: Vec<&str> = Vec::new();
    let mut j = at;
    loop {
        while j > b0 && b[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        let e = j;
        while j > b0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
            j -= 1;
        }
        if j == e {
            return (at, String::new());
        }
        segs.push(&masked[j..e]);
        let mut k = j;
        while k > b0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        if k > b0 && b[k - 1] == b'.' {
            j = k - 1;
            continue;
        }
        break;
    }
    segs.reverse();
    (j, segs.join("."))
}

/// If the statement containing `recv_start` is `let [mut] name [: ty] =`
/// with the `=` immediately preceding the receiver, return the binding
/// name. Tuple patterns, `if let`/`while let` and plain assignments
/// yield `None` (temporary-guard semantics, the conservative default).
fn binding_name(masked: &str, b0: usize, recv_start: usize) -> Option<String> {
    let b = masked.as_bytes();
    let mut s = recv_start;
    while s > b0 && !matches!(b[s - 1], b';' | b'{' | b'}') {
        s -= 1;
    }
    let head = masked[s..recv_start].trim();
    let rest = head.strip_prefix("let")?;
    if !rest.starts_with(char::is_whitespace) {
        return None;
    }
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if name_end == 0 {
        return None; // `let (a, b) = ..` and friends
    }
    let name = &rest[..name_end];
    // Everything between the name and the trailing `=` must be a type
    // annotation or nothing; a second `=` or a `.` means this is not a
    // simple `let name = <lock call>` head.
    let tail = rest[name_end..].trim();
    let tail = tail.strip_suffix('=')?;
    if tail.contains('=') || tail.contains('.') {
        return None;
    }
    if !tail.is_empty() && !tail.trim_start().starts_with(':') {
        return None;
    }
    Some(name.to_string())
}

/// Offset of the `}` closing the innermost block enclosing `at`.
fn block_end(b: &[u8], at: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < end {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// End of the statement containing `at`: the next `;` at bracket depth
/// zero, bounded by the enclosing block's close.
fn statement_end(b: &[u8], at: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < end {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' => depth -= 1,
            b'}' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

/// The identifier inside `drop( .. )` starting right after the `drop`
/// word at `from`, if the argument is a single identifier.
fn drop_argument(masked: &str, from: usize, end: usize) -> Option<String> {
    let b = masked.as_bytes();
    let mut i = from;
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= end || b[i] != b'(' {
        return None;
    }
    i += 1;
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    let s = i;
    while i < end && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    if i == s {
        return None;
    }
    let name = &masked[s..i];
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    (i < end && b[i] == b')').then(|| name.to_string())
}

/// Byte offset of the `)` matching the `(` at `open`.
fn matching_close(b: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Is `at` syntactically inside a `while`/`loop` block within `b0..at`?
///
/// Walks outwards through the enclosing braces; each block is
/// classified by the first token of the statement that opens it
/// (`while ..{`, `loop {`, optionally behind a `'label:`). `for` is
/// deliberately *not* accepted: the rule targets condvar re-check
/// loops, which the codebase writes as `while`/`loop`.
fn in_loop(masked: &str, b0: usize, at: usize) -> bool {
    let b = masked.as_bytes();
    let mut depth = 0i32;
    let mut i = at;
    while i > b0 {
        i -= 1;
        match b[i] {
            b'}' => depth += 1,
            b'{' => {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                // Found an enclosing open brace; classify its statement.
                let mut s = i;
                while s > b0 && !matches!(b[s - 1], b';' | b'{' | b'}') {
                    s -= 1;
                }
                let head = masked[s..i].trim_start();
                if head_is_loop(head) {
                    return true;
                }
                // Value-position loops: `let result = loop {`, match
                // arms `Some(_) => loop {`.
                if let Some(eq) = head.rfind('=') {
                    let tail = head[eq + 1..].trim_start_matches('>').trim_start();
                    if head_is_loop(tail) {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Does this statement head (label stripped) start with `while`/`loop`?
fn head_is_loop(head: &str) -> bool {
    let mut head = head;
    // Strip a loop label (`'outer: loop {`).
    if let Some(rest) = head.strip_prefix('\'') {
        if let Some(colon) = rest.find(':') {
            head = rest[colon + 1..].trim_start();
        }
    }
    let word_end = head
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(head.len());
    matches!(&head[..word_end], "while" | "loop")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scopes(src: &str) -> Vec<Guard> {
        let lx = crate::lexer::lex(src);
        guard_scopes(&lx.masked, 0, lx.masked.len())
    }

    #[test]
    fn bound_guard_runs_to_block_end() {
        let src = "{ let mut st = self.shared.state.lock(); st.x += 1; after(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].name.as_deref(), Some("st"));
        assert_eq!(g[0].receiver, "self.shared.state");
        assert!(g[0].covers(src.find("after").unwrap()));
    }

    #[test]
    fn drop_ends_the_scope_early() {
        let src = "{ let g = m.lock(); use_it(&g); drop(g); notify(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert!(g[0].covers(src.find("use_it").unwrap()));
        assert!(!g[0].covers(src.find("notify").unwrap()));
    }

    #[test]
    fn nested_block_binding_ends_at_its_own_brace() {
        let src = "{ outer(); { let g = m.lock(); inner(); } tail(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert!(g[0].covers(src.find("inner").unwrap()));
        assert!(!g[0].covers(src.find("tail").unwrap()));
        assert!(!g[0].covers(src.find("outer").unwrap()));
    }

    #[test]
    fn early_return_does_not_shorten_the_scope() {
        // The branch may not execute, so the call after it still runs
        // under the guard and must stay covered.
        let src = "{ let g = m.lock(); if c { return; } blocking(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert!(g[0].covers(src.find("blocking").unwrap()));
    }

    #[test]
    fn shadowed_guards_both_stay_live_and_drop_closes_the_shadow() {
        let src = "{ let g = a.lock(); let g = bb.lock(); drop(g); tail(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 2);
        let first = g.iter().find(|g| g.receiver == "a").expect("first guard");
        let second = g.iter().find(|g| g.receiver == "bb").expect("shadow");
        let tail = src.find("tail").unwrap();
        // Shadowing does not drop the original: it lives to block end.
        assert!(first.covers(tail), "original guard must outlive the drop");
        assert!(!second.covers(tail), "drop(g) closes the latest shadow");
    }

    #[test]
    fn temporary_guard_covers_one_statement() {
        let src = "{ self.chan.st.lock().senders += 1; next(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert!(g[0].name.is_none());
        assert_eq!(g[0].receiver, "self.chan.st");
        assert!(g[0].covers(src.find("senders").unwrap()));
        assert!(!g[0].covers(src.find("next").unwrap()));
    }

    #[test]
    fn multiline_builder_chain_receiver_is_joined() {
        let src = "{\n    let samples = self\n        .samples\n        .lock();\n    go();\n}";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].receiver, "self.samples");
        assert_eq!(g[0].name.as_deref(), Some("samples"));
    }

    #[test]
    fn poison_adapter_and_annotation_still_bind() {
        let src =
            "{ let mut g: MutexGuard<u32> = m.lock().unwrap_or_else(|p| p.into_inner()); t(); }";
        let g = scopes(src);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].name.as_deref(), Some("g"));
    }

    #[test]
    fn if_let_and_tuple_patterns_are_temporaries() {
        let g = scopes("{ if let Some(v) = slot.lock().take() { use_it(v); } t(); }");
        assert_eq!(g.len(), 1);
        assert!(g[0].name.is_none());
        let g2 = scopes("{ let (a, b) = pair.lock(); t(); }");
        assert_eq!(g2.len(), 1);
        assert!(g2[0].name.is_none());
    }

    #[test]
    fn range_expressions_are_not_guards() {
        assert!(scopes("{ let r = data.get(iu * nv..(iu + 2) * nv); }").is_empty());
    }

    #[test]
    fn wait_sites_classify_loop_context() {
        let src = "{\n    loop {\n        if c { return; }\n        cv.wait(&mut st);\n    }\n    cv2.wait(&mut g);\n}";
        let lx = crate::lexer::lex(src);
        let w = wait_sites(&lx.masked, 0, lx.masked.len());
        assert_eq!(w.len(), 2);
        assert!(w[0].in_loop);
        assert!(args_name_guard(&w[0].args, "st"));
        assert!(!w[1].in_loop);
    }

    #[test]
    fn value_position_loop_counts_as_loop() {
        let src = "{ let result = loop {\n    if done { break 1; }\n    cv.wait(&mut st);\n}; }";
        let lx = crate::lexer::lex(src);
        let w = wait_sites(&lx.masked, 0, lx.masked.len());
        assert_eq!(w.len(), 1);
        assert!(w[0].in_loop, "wait in `let r = loop {{..}}` is in a loop");
    }

    #[test]
    fn while_header_and_labels_count_as_loops() {
        let src = "{ while st.full() { cv.wait(&mut st); } }";
        let lx = crate::lexer::lex(src);
        let w = wait_sites(&lx.masked, 0, lx.masked.len());
        assert!(w[0].in_loop);
        let src2 = "{ 'outer: loop { cv.wait(&mut st); } }";
        let lx2 = crate::lexer::lex(src2);
        let w2 = wait_sites(&lx2.masked, 0, lx2.masked.len());
        assert!(w2[0].in_loop);
    }

    #[test]
    fn wait_inside_if_inside_loop_is_still_in_loop() {
        let src = "{ loop { let stopping = { if !*g { g = cv.wait_timeout(g, p); } *g }; } }";
        let lx = crate::lexer::lex(src);
        let w = wait_sites(&lx.masked, 0, lx.masked.len());
        assert_eq!(w.len(), 1);
        assert!(w[0].in_loop);
        assert!(args_name_guard(&w[0].args, "g"));
    }
}
