//! Float determinism: the bit-identity contract, analyzer-checked.
//!
//! `ct_bp`'s kernels promise bit-identical volumes for a fixed input
//! regardless of thread count or scheduling. Two things break that
//! promise silently:
//!
//! * **Order-sensitive reductions** (`float-order`): float addition is
//!   not associative, so folding partials in `HashMap` iteration order,
//!   or merging worker results in channel-arrival order, yields a
//!   different bit pattern per run. The documented-deterministic path
//!   is the tiled merge (fixed tile order); anything else that
//!   accumulates floats from an unordered source is flagged. Detection
//!   is a taint dataflow over the CFG: values derived from hash-map
//!   iteration or `recv`-family joins are tainted, and a float
//!   accumulation whose RHS is tainted — or that sits inside a loop
//!   iterating an unordered source — is a finding.
//! * **Ungated FMA** (`float-fma`): `mul_add` contracts to one rounding
//!   on FMA hardware and libm-emulates elsewhere, so a `.mul_add(..)`
//!   reachable from a strict-mode kernel root must sit behind the
//!   `lanes-fma` feature gate. The CFG records match-arm patterns and
//!   if-conditions as edge conditions; a boolean "may be ungated"
//!   dataflow clears on edges whose condition names the Fma gate, and
//!   any `.mul_add` still reachable in the may-ungated state is a
//!   finding.
//!
//! Escapes: `// analyze: allow(float, reason = "...")` (full name
//! `float-determinism` accepted). Roots come from the `float-root`
//! lines of `ci/analyze.conf`.

use super::{Analysis, Pass, PassOutput};
use crate::callgraph;
use crate::cfg::{self, StmtKind};
use crate::dataflow::{self, Lattice};
use crate::passes::determinism::{order_dependent_use, tracked_idents};
use crate::rules::Violation;
use std::collections::BTreeSet;

pub struct FloatDeterminism;

/// Taint lattice: the set of variables whose value may depend on an
/// unordered iteration or arrival order. Join is union.
#[derive(Clone, PartialEq, Default)]
struct Taint {
    vars: BTreeSet<String>,
}

impl Lattice for Taint {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.vars.len();
        self.vars.extend(other.vars.iter().cloned());
        self.vars.len() != before
    }
}

/// "May be ungated" lattice for the FMA pass: true until an edge whose
/// condition names the FMA gate is taken. Join is OR.
#[derive(Clone, PartialEq)]
struct MayUngated(bool);

impl Lattice for MayUngated {
    fn join(&mut self, other: &Self) -> bool {
        let grew = !self.0 && other.0;
        self.0 |= other.0;
        grew
    }
}

/// Channel/thread-join receivers whose arrival order is scheduling-
/// dependent.
const RECV_FAMILY: &[&str] = &[".recv()", ".try_recv()", ".recv_timeout(", ".try_iter()"];

impl Pass for FloatDeterminism {
    fn name(&self) -> &'static str {
        "float-determinism"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        self.check_fma(cx, out);
        self.check_order(cx, out);
    }
}

impl FloatDeterminism {
    /// `float-fma`: `.mul_add` reachable from a strict root and not
    /// dominated by an FMA-gate check.
    fn check_fma(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let roots: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && !f.cfg_off
                    && cx
                        .conf
                        .float_roots
                        .iter()
                        .any(|r| f.qual == *r || f.qual.starts_with(&format!("{r}::")))
            })
            .map(|(i, _)| i)
            .collect();
        let pred = cx.graph.reach(&roots);

        for &fi in pred.keys() {
            let f = &ws.fns[fi];
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            if !masked[b0..b1.min(masked.len())].contains(".mul_add(") {
                continue;
            }
            out.stat("fma_fns_checked", 1);

            let g = cfg::lower(masked, (b0, b1));
            out.stat("cfg_blocks", g.blocks.len() as u64);
            let sol = dataflow::forward(
                &g,
                MayUngated(true),
                |_, _, state| state.clone(),
                |cond, state| {
                    if cond.polarity && names_fma_gate(&masked[cond.span.0..cond.span.1]) {
                        MayUngated(false)
                    } else {
                        state.clone()
                    }
                },
            );
            out.stat("solver_iterations", sol.iterations as u64);

            for (bi, blk) in g.blocks.iter().enumerate() {
                let ungated = sol.inputs[bi].as_ref().is_some_and(|s| s.0);
                if !ungated {
                    continue;
                }
                for s in &blk.stmts {
                    let text = &masked[s.span.0..s.span.1.min(masked.len())];
                    let Some(p) = text.find(".mul_add(") else {
                        continue;
                    };
                    let line = callgraph::line_of(masked, s.span.0 + p);
                    if file.test_lines.get(line).copied().unwrap_or(false) {
                        continue;
                    }
                    if escaped(file, line, out, "mul_add call") {
                        continue;
                    }
                    out.violations.push(Violation {
                        path: file.rel.clone(),
                        line,
                        rule: "float-fma",
                        msg: format!(
                            "`mul_add` in `{}` is reachable from a strict-mode kernel root \
                             without an FMA gate check — contraction changes the rounding; \
                             gate it behind the lanes-fma path",
                            f.qual
                        ),
                    });
                }
            }
        }
    }

    /// `float-order`: float accumulation fed by hash-order iteration or
    /// channel-arrival joins, anywhere in production code.
    fn check_order(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        for (fi, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            let body = &masked[b0..b1.min(masked.len())];
            // Cheap pre-filter: the function must both touch an
            // unordered source and accumulate.
            let hash_tracked = tracked_idents(masked);
            let has_unordered =
                !hash_tracked.is_empty() || RECV_FAMILY.iter().any(|m| body.contains(m));
            let accumulates = body.contains("+=")
                || body.contains(".sum")
                || body.contains(".fold(")
                || body.contains(".product");
            if !has_unordered || !accumulates {
                continue;
            }
            out.stat("order_fns_checked", 1);
            let _ = fi;

            let g = cfg::lower(masked, (b0, b1));
            out.stat("cfg_blocks", g.blocks.len() as u64);

            // Loop heads iterating an unordered source: any accumulation
            // under them folds in that order.
            let unordered_head = |head: usize| -> bool {
                g.blocks[head].stmts.iter().any(|s| match &s.kind {
                    StmtKind::ForHead { iter, .. } => {
                        let it = &masked[iter.0..iter.1];
                        hash_tracked
                            .iter()
                            .any(|id| order_dependent_use(it, id).is_some())
                            || RECV_FAMILY.iter().any(|m| it.contains(m))
                            || it.contains(".try_iter()")
                    }
                    _ => false,
                })
            };

            let sol = dataflow::forward(
                &g,
                Taint::default(),
                |_, blk, state| {
                    let mut t = state.clone();
                    for s in &blk.stmts {
                        taint_stmt(masked, s, &hash_tracked, &mut t);
                    }
                    t
                },
                |_, state| state.clone(),
            );
            out.stat("solver_iterations", sol.iterations as u64);

            for (bi, blk) in g.blocks.iter().enumerate() {
                let Some(in_state) = &sol.inputs[bi] else {
                    continue;
                };
                let mut taint = in_state.clone();
                let in_unordered_loop = blk.encl_heads.iter().any(|&h| unordered_head(h))
                    || (blk.loop_head && unordered_head(bi));
                for s in &blk.stmts {
                    let text = masked[s.span.0..s.span.1.min(masked.len())].trim();
                    if let Some((acc, rhs)) = float_accumulation(text, ws) {
                        let rhs_tainted = taint.vars.iter().any(|v| contains_word(rhs, v))
                            || expr_unordered(rhs, &hash_tracked);
                        if rhs_tainted || in_unordered_loop {
                            let line = callgraph::line_of(masked, s.span.0);
                            if !file.test_lines.get(line).copied().unwrap_or(false)
                                && !escaped(file, line, out, "order-sensitive reduction")
                            {
                                let how = if in_unordered_loop {
                                    "inside a loop over an unordered source"
                                } else {
                                    "from an order-tainted value"
                                };
                                out.violations.push(Violation {
                                    path: file.rel.clone(),
                                    line,
                                    rule: "float-order",
                                    msg: format!(
                                        "float accumulator `{acc}` in `{}` is folded {how} — \
                                         summation order changes the bits; sort keys or use \
                                         the tiled merge",
                                        f.qual
                                    ),
                                });
                            }
                        }
                    } else if let Some(what) = single_stmt_reduction(text, &hash_tracked, ws) {
                        let line = callgraph::line_of(masked, s.span.0);
                        if !file.test_lines.get(line).copied().unwrap_or(false)
                            && !escaped(file, line, out, "order-sensitive reduction")
                        {
                            out.violations.push(Violation {
                                path: file.rel.clone(),
                                line,
                                rule: "float-order",
                                msg: format!(
                                    "float reduction `{what}` in `{}` folds an unordered \
                                     source — summation order changes the bits",
                                    f.qual
                                ),
                            });
                        }
                    }
                    taint_stmt(masked, s, &hash_tracked, &mut taint);
                }
            }
        }
    }
}

/// Mark an escape used and report a missing reason; true when the
/// finding is suppressed (well-formed or not — the directive is live).
fn escaped(
    file: &crate::workspace::FileInfo,
    line: usize,
    out: &mut PassOutput,
    what: &str,
) -> bool {
    let hit = file
        .lexed
        .analyze_allowed(line, "float")
        .map(|a| ("float", a))
        .or_else(|| {
            file.lexed
                .analyze_allowed(line, "float-determinism")
                .map(|a| ("float-determinism", a))
        });
    match hit {
        Some((key, a)) => {
            out.used(&file.rel, a.line, key);
            if a.reason.is_none() {
                out.violations.push(Violation {
                    path: file.rel.clone(),
                    line,
                    rule: "float-allow",
                    msg: format!(
                        "exemption for {what} is missing its reason — write \
                         analyze: allow(float, reason = \"...\")"
                    ),
                });
            }
            true
        }
        None => false,
    }
}

/// Does a condition text name the FMA gate? Matches the workspace
/// idiom: `Kernel::LanesFma`, `Fma => ..` match arms, `use_fma`,
/// `cfg!(target_feature = "fma")`, `has_fma`.
fn names_fma_gate(cond: &str) -> bool {
    cond.contains("Fma") || cond.contains("fma")
}

/// Statement-level taint transfer: a binding or assignment whose RHS
/// consumes an unordered source (or an already-tainted var) taints the
/// bound name; for-loops over unordered sources taint their pattern.
fn taint_stmt(masked: &str, s: &cfg::Stmt, hash_tracked: &BTreeSet<String>, t: &mut Taint) {
    match &s.kind {
        StmtKind::ForHead { pat, iter } => {
            let it = &masked[iter.0..iter.1];
            if expr_unordered(it, hash_tracked) || t.vars.iter().any(|v| contains_word(it, v)) {
                for name in idents_of(&masked[pat.0..pat.1]) {
                    t.vars.insert(name);
                }
            }
        }
        StmtKind::BindOpaque { name } => {
            // A `let r = loop { .. }` result: opaque, keep untainted —
            // the loop body's own accumulations were already checked.
            let _ = name;
        }
        StmtKind::Plain => {
            let text = masked[s.span.0..s.span.1.min(masked.len())].trim();
            let (lhs, rhs) = match split_binding(text) {
                Some(p) => p,
                None => return,
            };
            let dirty =
                expr_unordered(rhs, hash_tracked) || t.vars.iter().any(|v| contains_word(rhs, v));
            if dirty {
                for name in idents_of(lhs) {
                    t.vars.insert(name);
                }
            }
        }
    }
}

/// `let PAT = RHS` or `PLACE = RHS` (plain `=` only).
fn split_binding(text: &str) -> Option<(&str, &str)> {
    let (head, rest) = match text.strip_prefix("let ") {
        Some(r) => {
            let eq = find_plain_eq(r)?;
            (&r[..eq], &r[eq + 1..])
        }
        None => {
            let eq = find_plain_eq(text)?;
            (&text[..eq], &text[eq + 1..])
        }
    };
    Some((head.trim(), rest.trim()))
}

fn find_plain_eq(t: &str) -> Option<usize> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = if i > 0 { b[i - 1] } else { b' ' };
                let next = b.get(i + 1).copied().unwrap_or(b' ');
                if next != b'='
                    && !matches!(
                        prev,
                        b'=' | b'!'
                            | b'<'
                            | b'>'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Does an expression consume an unordered source directly?
fn expr_unordered(expr: &str, hash_tracked: &BTreeSet<String>) -> bool {
    hash_tracked
        .iter()
        .any(|id| order_dependent_use(expr, id).is_some())
        || RECV_FAMILY.iter().any(|m| expr.contains(m))
}

/// `ACC += RHS` / `*ACC += RHS` where ACC is a known float identifier
/// or the RHS carries float evidence.
fn float_accumulation<'a>(
    text: &'a str,
    ws: &crate::workspace::Workspace,
) -> Option<(String, &'a str)> {
    let p = text.find("+=")?;
    let lhs = text[..p].trim().trim_start_matches('*').trim();
    let rhs = text[p + 2..].trim();
    let acc = lhs.rsplit('.').next().unwrap_or(lhs).trim();
    if acc.is_empty() || !acc.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let is_float = ws.float_idents.contains(acc)
        || rhs.contains("f32")
        || rhs.contains("f64")
        || rhs.contains(".0 ")
        || rhs.ends_with(".0");
    is_float.then(|| (acc.to_string(), rhs))
}

/// One-statement reductions: `map.values().sum::<f32>()` and friends.
fn single_stmt_reduction(
    text: &str,
    hash_tracked: &BTreeSet<String>,
    ws: &crate::workspace::Workspace,
) -> Option<String> {
    let red = [
        ".sum::<f32>",
        ".sum::<f64>",
        ".fold(",
        ".product::<f32>",
        ".product::<f64>",
    ]
    .iter()
    .find(|m| text.contains(**m))?;
    if !expr_unordered(text, hash_tracked) {
        return None;
    }
    // `.fold(` needs float evidence; the typed sums carry their own.
    if *red == ".fold(" {
        let floaty = text.contains("f32")
            || text.contains("f64")
            || text.contains("0.0")
            || idents_of(text)
                .iter()
                .any(|id| ws.float_idents.contains(id.as_str()));
        if !floaty {
            return None;
        }
    }
    let start = text.find(*red)?;
    let head = text[..start]
        .rsplit(|c: char| c.is_whitespace() || c == '=')
        .next()?;
    Some(format!("{}{}..", head.trim(), red.trim_end_matches('(')))
}

fn contains_word(text: &str, word: &str) -> bool {
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        from = at + word.len();
        let before = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let end = at + word.len();
        let after = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if before && after {
            return true;
        }
    }
    false
}

fn idents_of(pat: &str) -> Vec<String> {
    pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| {
            !s.is_empty()
                && !s.starts_with(|c: char| c.is_ascii_digit())
                && !["mut", "ref", "let", "_"].contains(s)
        })
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_gate_names_match_workspace_idioms() {
        assert!(names_fma_gate("Kernel::LanesFma"));
        assert!(names_fma_gate("use_fma"));
        assert!(names_fma_gate("cfg!(target_feature = \"fma\")"));
        assert!(!names_fma_gate("Kernel::Warp"));
    }

    #[test]
    fn binding_split_ignores_comparisons() {
        assert_eq!(split_binding("let x = y.recv()"), Some(("x", "y.recv()")));
        assert_eq!(
            split_binding("total = total + v"),
            Some(("total", "total + v"))
        );
        assert!(split_binding("if a == b {").is_none());
        assert!(split_binding("x += 1").is_none());
    }

    #[test]
    fn word_containment_is_boundary_aware() {
        assert!(contains_word("a + part", "part"));
        assert!(!contains_word("partial", "part"));
        assert!(contains_word("(part)", "part"));
    }
}
