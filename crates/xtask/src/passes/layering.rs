//! Crate-layering: the dependency structure is a contract, not an
//! accident.
//!
//! `ci/analyze.conf` declares the allowed dependency DAG (`layer`
//! lines). The pass checks three things:
//!
//! 1. the *declared* graph is acyclic and mentions only real crates;
//! 2. every *actual* edge — a `[dependencies]` entry in a crate's
//!    `Cargo.toml`, or a source-level `other_crate::` path in
//!    non-test code — is declared;
//! 3. every workspace crate has a layering entry at all (so a new crate
//!    cannot land without declaring its place in the stack).
//!
//! Dev-dependencies are exempt: tests may reach across layers.

use super::{Analysis, Pass, PassOutput};
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

pub struct CrateLayering;

impl Pass for CrateLayering {
    fn name(&self) -> &'static str {
        "layering"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let conf = cx.conf;
        let conf_rel = conf
            .path
            .strip_prefix(&ws.root)
            .unwrap_or(&conf.path)
            .to_path_buf();
        let names: BTreeSet<&str> = ws.crates.iter().map(|c| c.name.as_str()).collect();
        let ident_to_name: BTreeMap<&str, &str> = ws
            .crates
            .iter()
            .map(|c| (c.ident.as_str(), c.name.as_str()))
            .collect();

        // 1a. Declared entries must name real crates…
        for (layer, deps) in &conf.layers {
            for n in std::iter::once(layer).chain(deps) {
                if !names.contains(n.as_str()) {
                    out.violations.push(Violation {
                        path: conf_rel.clone(),
                        line: 1,
                        rule: "layering",
                        msg: format!("declared layer mentions unknown crate `{n}`"),
                    });
                }
            }
        }
        // 1b. …every crate must have an entry…
        for c in &ws.crates {
            if !conf.layers.contains_key(&c.name) {
                out.violations.push(Violation {
                    path: conf_rel.clone(),
                    line: 1,
                    rule: "layering",
                    msg: format!(
                        "crate `{}` has no layering entry in ci/analyze.conf",
                        c.name
                    ),
                });
            }
        }
        // 1c. …and the declared graph must be a DAG.
        let declared: BTreeMap<&str, Vec<&str>> = conf
            .layers
            .iter()
            .map(|(k, v)| (k.as_str(), v.iter().map(String::as_str).collect()))
            .collect();
        if let Some(cycle) = find_cycle(&declared) {
            out.violations.push(Violation {
                path: conf_rel.clone(),
                line: 1,
                rule: "layering",
                msg: format!("declared layering has a cycle: {}", cycle.join(" -> ")),
            });
        }

        // 2a. Cargo.toml edges must be declared.
        let mut actual: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for c in &ws.crates {
            let allowed = conf.layers.get(&c.name);
            for dep in &c.deps {
                if !names.contains(dep.as_str()) {
                    continue; // external crate — not a layering concern
                }
                actual.entry(c.name.as_str()).or_default().push(dep);
                if allowed.is_none_or(|a| !a.contains(dep)) {
                    out.violations.push(Violation {
                        path: c.dir.join("Cargo.toml"),
                        line: 1,
                        rule: "layering",
                        msg: format!(
                            "undeclared dependency edge `{}` -> `{dep}` \
                             (declare it in ci/analyze.conf or remove the dep)",
                            c.name
                        ),
                    });
                }
            }
        }

        // 2b. Source-level `other_crate::` references must be declared
        // too — a path dependency you forgot in Cargo.toml cannot hide,
        // and neither can a `use` that sneaks in an undeclared layer.
        for file in &ws.files {
            let this = &ws.crates[file.crate_idx];
            let allowed = conf.layers.get(&this.name);
            for (idx, text) in file.lexed.masked.lines().enumerate() {
                let line = idx + 1;
                if file.test_lines.get(line).copied().unwrap_or(false) {
                    continue;
                }
                for (ident, dep_name) in &ident_to_name {
                    if *dep_name == this.name {
                        continue;
                    }
                    let Some(pos) = find_crate_ref(text, ident) else {
                        continue;
                    };
                    let _ = pos;
                    let declared_edge = allowed.is_some_and(|a| a.iter().any(|d| d == dep_name));
                    let in_actual = actual
                        .get(this.name.as_str())
                        .is_some_and(|v| v.contains(dep_name));
                    if !declared_edge {
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "layering",
                            msg: format!(
                                "`{}` uses `{ident}::` but the edge `{}` -> `{dep_name}` \
                                 is not declared",
                                this.name, this.name
                            ),
                        });
                    } else if !in_actual {
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "layering",
                            msg: format!(
                                "`{}` uses `{ident}::` but `{dep_name}` is not in its \
                                 Cargo.toml [dependencies]",
                                this.name
                            ),
                        });
                    }
                    break; // one finding per line is enough
                }
            }
        }

        // 2c. The actual edge set must itself be acyclic (a cycle built
        // from edges that are individually declared-in-error).
        if let Some(cycle) = find_cycle(&actual) {
            out.violations.push(Violation {
                path: PathBuf::from("Cargo.toml"),
                line: 1,
                rule: "layering",
                msg: format!(
                    "actual crate dependencies form a cycle: {}",
                    cycle.join(" -> ")
                ),
            });
        }
    }
}

/// Find `ident::` in a masked source line as a standalone path head.
fn find_crate_ref(text: &str, ident: &str) -> Option<usize> {
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(ident) {
        let at = from + p;
        from = at + ident.len();
        let before_ok = at == 0 || {
            let c = b[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_' || c == b':')
        };
        let after = at + ident.len();
        let after_ok = text[after..].starts_with("::");
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// DFS cycle detection; returns one cycle as a crate-name path.
fn find_cycle<'a>(graph: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = graph.keys().map(|&k| (k, Mark::White)).collect();

    fn visit<'a>(
        node: &'a str,
        graph: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        match marks.get(node) {
            Some(Mark::Black) => return None,
            Some(Mark::Grey) => {
                let start = stack.iter().position(|&n| n == node).unwrap_or(0);
                let mut cycle: Vec<String> = stack[start..].iter().map(|s| s.to_string()).collect();
                cycle.push(node.to_string());
                return Some(cycle);
            }
            _ => {}
        }
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(deps) = graph.get(node) {
            for &d in deps {
                if let Some(c) = visit(d, graph, marks, stack) {
                    return Some(c);
                }
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let keys: Vec<&str> = graph.keys().copied().collect();
    for k in keys {
        if marks.get(k) == Some(&Mark::White) {
            let mut stack = Vec::new();
            if let Some(c) = visit(k, graph, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_detection_finds_a_cycle_and_passes_a_dag() {
        let mut g: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        g.insert("a", vec!["b"]);
        g.insert("b", vec!["c"]);
        g.insert("c", vec!["a"]);
        let cycle = find_cycle(&g).expect("cycle found");
        assert!(cycle.len() >= 3);
        let mut dag: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        dag.insert("a", vec!["b", "c"]);
        dag.insert("b", vec!["c"]);
        dag.insert("c", vec![]);
        assert!(find_cycle(&dag).is_none());
    }

    #[test]
    fn crate_refs_need_path_position() {
        assert!(find_crate_ref("use ct_core::Volume;", "ct_core").is_some());
        assert!(find_crate_ref("let x = ct_core::Volume::zeros(d);", "ct_core").is_some());
        assert!(find_crate_ref("my_ct_core::f()", "ct_core").is_none());
        assert!(find_crate_ref("ct_core_ext::f()", "ct_core").is_none());
        assert!(find_crate_ref("// just words", "ct_core").is_none());
    }
}
