//! The analysis-pass framework behind `cargo xtask analyze`.
//!
//! A [`Pass`] sees the loaded [`Workspace`], the shared [`CallGraph`]
//! and the declared [`Config`], and appends [`Violation`]s. Passes are
//! independent; `run_all` runs every registered pass and returns the
//! combined, location-sorted findings — the same reporting contract as
//! `xtask lint`.

pub mod alloc;
pub mod determinism;
pub mod layering;
pub mod locks;
pub mod panics;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::rules::Violation;
use crate::workspace::Workspace;

pub struct Analysis<'a> {
    pub ws: &'a Workspace,
    pub graph: &'a CallGraph,
    pub conf: &'a Config,
}

pub trait Pass {
    fn name(&self) -> &'static str;
    fn run(&self, cx: &Analysis<'_>, out: &mut Vec<Violation>);
}

pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panics::PanicReachability),
        Box::new(layering::CrateLayering),
        Box::new(determinism::Determinism),
        Box::new(locks::LockDiscipline),
        Box::new(alloc::AllocReachability),
    ]
}

pub fn run_all(cx: &Analysis<'_>) -> Vec<Violation> {
    let passes = default_passes();
    let mut out = Vec::new();
    // An exemption naming a pass that does not exist is a typo that
    // would silently exempt nothing — reject it up front.
    for file in &cx.ws.files {
        for a in &file.lexed.analyze_allows {
            let known = passes.iter().any(|p| {
                p.name() == a.pass
                    || (p.name() == "panic-reachable" && a.pass == "panic")
                    || (p.name() == "lock-discipline" && a.pass == "lock")
                    || (p.name() == "alloc-reachable" && a.pass == "alloc")
            });
            if !known {
                out.push(Violation {
                    path: file.rel.clone(),
                    line: a.line,
                    rule: "analyze-allow",
                    msg: format!("allow directive names unknown pass `{}`", a.pass),
                });
            }
        }
    }
    for pass in &passes {
        pass.run(cx, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    out
}
