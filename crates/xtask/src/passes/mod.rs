//! The analysis-pass framework behind `cargo xtask analyze`.
//!
//! A [`Pass`] sees the loaded [`Workspace`], the shared [`CallGraph`]
//! and the declared [`Config`], and fills a [`PassOutput`]: violations,
//! per-pass stats (CFG blocks lowered, solver iterations, accesses
//! classified), the elidable checked-gather report, and the set of
//! escape directives that actually suppressed something. Passes are
//! independent, so [`run_all`] runs each on its own scoped thread and
//! merges the outputs deterministically (registration order, then the
//! location sort) — the same reporting contract as `xtask lint`, with
//! per-pass wall time kept for `--record` and the JSON document.
//!
//! After the passes finish, `run_all` audits the escape directives:
//! an `analyze: allow(..)` no pass consumed is dead weight that will
//! silently exempt a future defect at that site, so it is reported as
//! `stale-allow`. The audit is skipped under `--roots` overrides
//! (narrowed reachability would make honest escapes look dead).

pub mod alloc;
pub mod bounds;
pub mod determinism;
pub mod floatdet;
pub mod layering;
pub mod locks;
pub mod panics;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::rules::Violation;
use crate::workspace::Workspace;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub struct Analysis<'a> {
    pub ws: &'a Workspace,
    pub graph: &'a CallGraph,
    pub conf: &'a Config,
    /// False under `--roots` overrides: ad-hoc reachability queries
    /// must not report honest escapes as stale.
    pub audit_escapes: bool,
}

/// One entry in the elidable checked-gather report: a `.get`-based
/// access the analyzer proved in bounds — a candidate for unchecked
/// (slice-pattern or iterator) restructuring, ranked by loop depth.
pub struct Gather {
    pub path: PathBuf,
    pub line: usize,
    pub qual: String,
    pub what: String,
    pub depth: usize,
}

/// Everything one pass produced.
#[derive(Default)]
pub struct PassOutput {
    pub violations: Vec<Violation>,
    /// Escape directives that matched a finding: (file, directive line,
    /// pass key as written). Anything not in here after all passes ran
    /// is stale.
    pub used_escapes: BTreeSet<(PathBuf, usize, String)>,
    /// Accumulated counters, shown per pass in the JSON document.
    pub stats: Vec<(String, u64)>,
    pub gathers: Vec<Gather>,
}

impl PassOutput {
    pub fn stat(&mut self, name: &str, add: u64) {
        if let Some(s) = self.stats.iter_mut().find(|(n, _)| n == name) {
            s.1 += add;
        } else {
            self.stats.push((name.to_string(), add));
        }
    }

    /// Record that the directive at (`path`, `line`) for `pass` matched
    /// a finding (suppressed or malformed — either way it is live).
    pub fn used(&mut self, path: &Path, line: usize, pass: &str) {
        self.used_escapes
            .insert((path.to_path_buf(), line, pass.to_string()));
    }
}

/// Per-pass summary surfaced in the v2 JSON document and `--record`.
pub struct PassReport {
    pub name: &'static str,
    pub findings: usize,
    pub wall_ms: f64,
    pub stats: Vec<(String, u64)>,
}

/// The combined result of one analyzer run.
pub struct AnalyzeReport {
    pub violations: Vec<Violation>,
    pub passes: Vec<PassReport>,
    pub gathers: Vec<Gather>,
}

pub trait Pass: Sync {
    fn name(&self) -> &'static str;
    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput);
}

pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(panics::PanicReachability),
        Box::new(layering::CrateLayering),
        Box::new(determinism::Determinism),
        Box::new(locks::LockDiscipline),
        Box::new(alloc::AllocReachability),
        Box::new(floatdet::FloatDeterminism),
        Box::new(bounds::IndexBounds),
    ]
}

/// Short escape keys accepted in `analyze: allow(<key>, ..)` and the
/// pass each belongs to.
const ESCAPE_ALIASES: &[(&str, &str)] = &[
    ("panic", "panic-reachable"),
    ("lock", "lock-discipline"),
    ("alloc", "alloc-reachable"),
    ("float", "float-determinism"),
    ("bounds", "index-bounds"),
];

fn known_escape_key(passes: &[Box<dyn Pass>], key: &str) -> bool {
    passes.iter().any(|p| p.name() == key) || ESCAPE_ALIASES.iter().any(|(short, _)| *short == key)
}

pub fn run_all(cx: &Analysis<'_>) -> AnalyzeReport {
    let passes = default_passes();
    let mut violations = Vec::new();
    // An exemption naming a pass that does not exist is a typo that
    // would silently exempt nothing — reject it up front.
    for file in &cx.ws.files {
        for a in &file.lexed.analyze_allows {
            if !known_escape_key(&passes, &a.pass) {
                violations.push(Violation {
                    path: file.rel.clone(),
                    line: a.line,
                    rule: "analyze-allow",
                    msg: format!("allow directive names unknown pass `{}`", a.pass),
                });
            }
        }
    }

    // Passes are independent: one scoped worker each, merged in
    // registration order so the report stays deterministic.
    let timed: Vec<(PassOutput, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = passes
            .iter()
            .map(|p| {
                s.spawn(move || {
                    // lint: allow(raw-clock)
                    let t0 = std::time::Instant::now();
                    let mut out = PassOutput::default();
                    p.run(cx, &mut out);
                    (out, t0.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis pass panicked"))
            .collect()
    });

    let mut reports = Vec::new();
    let mut used: BTreeSet<(PathBuf, usize, String)> = BTreeSet::new();
    let mut gathers = Vec::new();
    for (pass, (out, wall_ms)) in passes.iter().zip(timed) {
        reports.push(PassReport {
            name: pass.name(),
            findings: out.violations.len(),
            wall_ms,
            stats: out.stats,
        });
        violations.extend(out.violations);
        used.extend(out.used_escapes);
        gathers.extend(out.gathers);
    }

    if cx.audit_escapes {
        for file in &cx.ws.files {
            for a in &file.lexed.analyze_allows {
                if !known_escape_key(&passes, &a.pass) {
                    continue; // already reported as analyze-allow
                }
                if !used.contains(&(file.rel.clone(), a.line, a.pass.clone())) {
                    violations.push(Violation {
                        path: file.rel.clone(),
                        line: a.line,
                        rule: "stale-allow",
                        msg: format!(
                            "escape `analyze: allow({})` suppresses nothing — remove it",
                            a.pass
                        ),
                    });
                }
            }
        }
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    // Elidable gathers ranked hottest (deepest loop) first.
    gathers.sort_by(|a, b| {
        (std::cmp::Reverse(a.depth), &a.path, a.line).cmp(&(
            std::cmp::Reverse(b.depth),
            &b.path,
            b.line,
        ))
    });
    AnalyzeReport {
        violations,
        passes: reports,
        gathers,
    }
}
