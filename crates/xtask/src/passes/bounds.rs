//! Index-bounds: interval analysis over the conf-declared hot roots.
//!
//! From the `bounds-root` entries in `ci/analyze.conf` (the
//! back-projection kernels, the ring) the pass walks the call graph,
//! lowers every reachable function body to a CFG ([`crate::cfg`]) and
//! runs the forward interval solver ([`crate::dataflow`]): variables
//! map to integer ranges whose endpoints may be symbolic `len(base)+k`
//! terms, `for i in 0..xs.len()` seeds `i ∈ [0, len(xs)-1]`, branch
//! conditions (`i < n`, `&&` conjunctions) refine along edges, and
//! loop heads widen so loop-carried counters terminate.
//!
//! Every slice access is then classified:
//!
//! * **direct indexing** (`xs[i]`, `xs[a..b]`) — PROVEN when the index
//!   interval sits inside `[0, len-1]` (symbolically or via a known
//!   constant length from `chunks_exact`/fixed-size arrays). UNPROVEN
//!   direct indexing inside a loop is an error: a latent panic on the
//!   hot path. Outside loops it is only counted (the panic pass covers
//!   the unwrap-shaped cases).
//! * **checked gathers** (`.get(i)` / `.get_mut(i)`) — a PROVEN gather
//!   is *elidable*: the bounds check the autovectorizer must keep can
//!   be restructured away. These feed the ranked gather report in the
//!   JSON document; they are never errors.
//! * **`chunks_exact(k)`** — an error when `k` is provably zero;
//!   a literal or conf-known nonzero const is PROVEN.
//!
//! Escapes: `// analyze: allow(bounds, reason = "...")` (the full pass
//! name `index-bounds` works too). Soundness envelope in DESIGN §6d:
//! intraprocedural only, last-ident place keys, widening can lose the
//! upper bound a proof needs.

use super::{Analysis, Gather, Pass, PassOutput};
use crate::callgraph;
use crate::cfg::{self, StmtKind};
use crate::dataflow::{self, Bound, Env, Interval};
use crate::rules::Violation;

pub struct IndexBounds;

impl Pass for IndexBounds {
    fn name(&self) -> &'static str {
        "index-bounds"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let roots: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && !f.cfg_off
                    && cx
                        .conf
                        .bounds_roots
                        .iter()
                        .any(|r| f.qual == *r || f.qual.starts_with(&format!("{r}::")))
            })
            .map(|(i, _)| i)
            .collect();
        let pred = cx.graph.reach(&roots);

        for &fi in pred.keys() {
            let f = &ws.fns[fi];
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            let body = &masked[b0..b1.min(masked.len())];
            if !(body.contains('[')
                || body.contains(".get(")
                || body.contains(".get_mut(")
                || body.contains(".chunks_exact"))
            {
                continue;
            }
            out.stat("fns_analyzed", 1);

            let g = cfg::lower(masked, (b0, b1));
            out.stat("cfg_blocks", g.blocks.len() as u64);
            let sol = dataflow::forward(
                &g,
                Env::default(),
                |_, blk, state| {
                    let mut env = state.clone();
                    for s in &blk.stmts {
                        apply_stmt(masked, s, &mut env);
                    }
                    env
                },
                |cond, state| refine(masked, (cond.span.0, cond.span.1), cond.polarity, state),
            );
            out.stat("solver_iterations", sol.iterations as u64);
            out.stat("widenings", sol.widenings as u64);

            for (bi, blk) in g.blocks.iter().enumerate() {
                let Some(in_state) = &sol.inputs[bi] else {
                    continue;
                };
                let mut env = in_state.clone();
                for s in &blk.stmts {
                    for acc in scan_accesses(masked, s.span, &env, cx) {
                        report_access(out, file, f, blk.loop_depth, masked, &acc);
                    }
                    apply_stmt(masked, s, &mut env);
                }
                // Accesses inside branch conditions (`if let Some(v) =
                // xs.get(i)`) live on the edges, not in the statements.
                let mut seen: Vec<(usize, usize)> = Vec::new();
                for e in &blk.edges {
                    let Some(c) = &e.cond else { continue };
                    if seen.contains(&c.span) {
                        continue;
                    }
                    seen.push(c.span);
                    for acc in scan_accesses(masked, c.span, &env, cx) {
                        report_access(out, file, f, blk.loop_depth, masked, &acc);
                    }
                }
            }
        }
    }
}

/// Classify one scanned access and emit the violation / gather / stat
/// it calls for. Shared by the statement scan and the edge-cond scan.
fn report_access(
    out: &mut PassOutput,
    file: &crate::workspace::FileInfo,
    f: &crate::workspace::FnInfo,
    loop_depth: usize,
    masked: &str,
    acc: &Access,
) {
    let line = callgraph::line_of(masked, acc.at);
    if file.test_lines.get(line).copied().unwrap_or(false) {
        return;
    }
    if acc.proven {
        out.stat("proven_accesses", 1);
        if acc.checked {
            out.gathers.push(Gather {
                path: file.rel.clone(),
                line,
                qual: f.qual.clone(),
                what: acc.what.clone(),
                depth: loop_depth,
            });
        }
        return;
    }
    out.stat("unproven_accesses", 1);
    if acc.checked || loop_depth == 0 {
        return;
    }
    let allow = file
        .lexed
        .analyze_allowed(line, "bounds")
        .map(|a| ("bounds", a))
        .or_else(|| {
            file.lexed
                .analyze_allowed(line, "index-bounds")
                .map(|a| ("index-bounds", a))
        });
    match allow {
        Some((key, a)) => {
            out.used(&file.rel, a.line, key);
            if a.reason.is_none() {
                out.violations.push(Violation {
                    path: file.rel.clone(),
                    line,
                    rule: "bounds-allow",
                    msg: format!(
                        "exemption for {} is missing its reason — write \
                         analyze: allow(bounds, reason = \"...\")",
                        acc.what
                    ),
                });
            }
        }
        None => out.violations.push(Violation {
            path: file.rel.clone(),
            line,
            rule: "index-bounds",
            msg: format!(
                "{} not proven in bounds ({}) inside a hot loop of `{}`",
                acc.what, acc.detail, f.qual
            ),
        }),
    }
}

// ---------------------------------------------------------------------
// Transfer function: statement effects on the interval environment.
// ---------------------------------------------------------------------

fn apply_stmt(masked: &str, s: &cfg::Stmt, env: &mut Env) {
    match &s.kind {
        StmtKind::ForHead { pat, iter } => {
            let pat_t = masked[pat.0..pat.1].trim();
            let iter_t = masked[iter.0..iter.1].trim();
            apply_for_binding(pat_t, iter_t, env);
        }
        StmtKind::BindOpaque { name } => {
            env.havoc(masked[name.0..name.1].trim());
        }
        StmtKind::Plain => {
            let text = masked[s.span.0..s.span.1].trim();
            apply_plain(text, env);
        }
    }
}

/// Bind a `for` pattern from its iterator expression.
fn apply_for_binding(pat: &str, iter: &str, env: &mut Env) {
    // Every name the pattern binds goes opaque first; the precise
    // cases below re-bind what they understand.
    for name in pat_idents(pat) {
        env.havoc(&name);
    }
    let iter = strip_parens(iter);
    // `xs.iter().enumerate()` with `(i, x)`: i ∈ [0, len(xs)-1].
    if let Some(prefix) = iter.strip_suffix(".enumerate()") {
        let base = strip_iter_adapters(prefix);
        if let Some(b) = simple_place(base) {
            if let Some(i_name) = tuple_first(pat) {
                env.set(
                    &i_name,
                    Interval {
                        lo: Bound::Int(0),
                        hi: Bound::Len { base: b, off: -1 },
                    },
                );
            }
            return;
        }
    }
    // `xs.chunks_exact(K)`: the chunk binding has constant length K.
    for m in [".chunks_exact(", ".chunks_exact_mut("] {
        if let Some(p) = iter.find(m) {
            let args = &iter[p + m.len()..];
            if let Some(close) = args.find(')') {
                if let Some(k) = parse_int(args[..close].trim()) {
                    if k > 0 {
                        if let Some(name) = single_ident(pat) {
                            env.lens.insert(name, k);
                        }
                    }
                }
            }
            return;
        }
    }
    // Range iterators, possibly behind `.rev()` / `.step_by(k)`.
    let core = strip_range_adapters(iter);
    if let Some((a, b, inclusive)) = split_range(core) {
        let av = if a.is_empty() {
            Interval::exact(0)
        } else {
            eval(a, env)
        };
        let bv = eval(b, env);
        if let Some(name) = single_ident(pat) {
            let hi = if inclusive {
                bv.hi
            } else {
                bv.hi.add_const(-1)
            };
            env.set(&name, Interval { lo: av.lo, hi });
        }
    }
}

/// Leading assignment forms plus a havoc sweep for nested mutation.
fn apply_plain(text: &str, env: &mut Env) {
    let text = text.trim().trim_end_matches(';').trim_end();
    let mut consumed = 0usize;
    if let Some(rest) = strip_word(text, "let") {
        let rest2 = strip_word(rest, "mut").unwrap_or(rest);
        if let Some(name) = leading_ident(rest2) {
            let after = rest2[name.len()..].trim_start();
            // Optional `: [T; N]` annotation carries a length fact.
            let (ann, init) = split_annotation(after);
            if let Some(n) = ann.and_then(array_len_of_type) {
                env.lens.insert(name.to_string(), n);
            }
            match init {
                Some(rhs) => {
                    let rhs = rhs.trim();
                    consumed = text.len() - rhs.len();
                    if let Some(n) = array_len_of_literal(rhs) {
                        env.lens.insert(name.to_string(), n);
                        env.set(name, Interval::top());
                    } else {
                        let v = eval(rhs, env);
                        env.set(name, v);
                    }
                }
                None => env.havoc(name),
            }
        }
    } else if let Some((lhs, op, rhs)) = leading_assign(text) {
        consumed = text.len() - rhs.len();
        let key = last_ident(lhs);
        if key.is_empty() {
            // Not a place we track; fall through to the havoc sweep.
        } else {
            let rv = eval(rhs.trim(), env);
            let nv = match op {
                "=" => rv,
                "+=" => env.get(&key).add(&rv),
                "-=" => env.get(&key).sub(&rv),
                "*=" => env.get(&key).mul(&rv),
                _ => Interval::top(),
            };
            env.set(&key, nv);
        }
    }
    havoc_nested(&text[consumed.min(text.len())..], env);
}

/// Havoc every variable a statement fragment mutates through nested
/// syntax the leading-form parser cannot see: `&mut x` arguments and
/// compound assignments inside closures.
fn havoc_nested(frag: &str, env: &mut Env) {
    let mut from = 0usize;
    while let Some(p) = frag[from..].find("&mut ") {
        let at = from + p + 5;
        from = at;
        if let Some(name) = leading_ident(frag[at..].trim_start()) {
            env.havoc(name);
        }
    }
    for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
        let mut from = 0usize;
        while let Some(p) = frag[from..].find(op) {
            let at = from + p;
            from = at + op.len();
            let key = last_ident(&frag[..at]);
            if !key.is_empty() {
                env.havoc(&key);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Branch refinement.
// ---------------------------------------------------------------------

fn refine(masked: &str, span: (usize, usize), polarity: bool, state: &Env) -> Env {
    let mut env = state.clone();
    let text = masked[span.0..span.1].trim();
    if polarity {
        for part in split_top(text, "&&") {
            apply_cmp(part.trim(), true, &mut env);
        }
    } else if text.contains("||") && !text.contains("&&") {
        // !(a || b) = !a && !b.
        for part in split_top(text, "||") {
            apply_cmp(part.trim(), false, &mut env);
        }
    } else if !text.contains("&&") && !text.contains("||") {
        apply_cmp(text, false, &mut env);
    }
    env
}

fn apply_cmp(cond: &str, truth: bool, env: &mut Env) {
    let Some((lhs, op, rhs)) = split_cmp(cond) else {
        return;
    };
    let op = if truth { op } else { negate_op(op) };
    if op == "!=" {
        return;
    }
    let rv = eval(rhs, env);
    constrain(lhs, op, &rv, env);
    let lv = eval(lhs, env);
    constrain(rhs, flip_op(op), &lv, env);
}

/// Narrow `place` by `place OP bound-interval`.
fn constrain(place: &str, op: &str, against: &Interval, env: &mut Env) {
    let place = place.trim();
    if simple_place(place).is_none() {
        return;
    }
    let key = last_ident(place);
    if key.is_empty() {
        return;
    }
    let mut cur = env.get(&key);
    match op {
        "<" => cur.hi = tighten_hi(&cur.hi, &against.hi.add_const(-1)),
        "<=" => cur.hi = tighten_hi(&cur.hi, &against.hi),
        ">" => cur.lo = tighten_lo(&cur.lo, &against.lo.add_const(1)),
        ">=" => cur.lo = tighten_lo(&cur.lo, &against.lo),
        "==" => {
            cur.hi = tighten_hi(&cur.hi, &against.hi);
            cur.lo = tighten_lo(&cur.lo, &against.lo);
        }
        _ => return,
    }
    env.set(&key, cur);
}

/// Prefer the smaller of two upper bounds; on incomparable bounds keep
/// the refinement (both are sound — the symbolic one usually proves).
fn tighten_hi(cur: &Bound, new: &Bound) -> Bound {
    if matches!(new, Bound::PosInf) {
        return cur.clone();
    }
    if new.le(cur) {
        new.clone()
    } else if cur.le(new) {
        cur.clone()
    } else {
        new.clone()
    }
}

fn tighten_lo(cur: &Bound, new: &Bound) -> Bound {
    if matches!(new, Bound::NegInf) {
        return cur.clone();
    }
    if cur.le(new) {
        new.clone()
    } else if new.le(cur) {
        cur.clone()
    } else {
        new.clone()
    }
}

fn negate_op(op: &str) -> &str {
    match op {
        "<" => ">=",
        "<=" => ">",
        ">" => "<=",
        ">=" => "<",
        "==" => "!=",
        _ => "==",
    }
}

fn flip_op(op: &str) -> &str {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        other => other,
    }
}

fn split_cmp(cond: &str) -> Option<(&str, &str, &str)> {
    let b = cond.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'<' | b'>' | b'=' | b'!' if depth == 0 => {
                let two = &cond[i..(i + 2).min(cond.len())];
                if ["<<", ">>", "=>", "->"].contains(&two) {
                    i += 2;
                    continue;
                }
                let op = if ["<=", ">=", "==", "!="].contains(&two) {
                    two
                } else if b[i] == b'<' || b[i] == b'>' {
                    &cond[i..i + 1]
                } else {
                    i += 1;
                    continue;
                };
                let lhs = &cond[..i];
                let rhs = &cond[i + op.len()..];
                if lhs.trim().is_empty() || rhs.trim().is_empty() {
                    return None;
                }
                return Some((lhs.trim(), op, rhs.trim()));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Expression evaluation to intervals.
// ---------------------------------------------------------------------

/// Evaluate a (masked) expression to an interval. Anything outside the
/// supported grammar is top — over-approximation is the safe direction.
pub fn eval(text: &str, env: &Env) -> Interval {
    let t = strip_parens(strip_cast(text.trim()));
    if t.is_empty() {
        return Interval::top();
    }
    // Unary minus.
    if let Some(rest) = t.strip_prefix('-') {
        if !rest.starts_with('-') {
            return Interval::exact(0).sub(&eval(rest, env));
        }
    }
    // Binary + / - (rightmost at depth 0).
    if let Some((l, op, r)) = split_addsub(t) {
        let lv = eval(l, env);
        let rv = eval(r, env);
        return if op == '+' { lv.add(&rv) } else { lv.sub(&rv) };
    }
    // Binary * / % / & (rightmost at depth 0).
    if let Some((l, op, r)) = split_muldiv(t) {
        let lv = eval(l, env);
        let rv = eval(r, env);
        return match op {
            '*' => lv.mul(&rv),
            '/' => div_interval(&lv, &rv),
            '%' => rem_interval(&lv, &rv),
            '&' => and_interval(&rv),
            _ => Interval::top(),
        };
    }
    // Method suffixes.
    if let Some(iv) = eval_method(t, env) {
        return iv;
    }
    if let Some(n) = parse_int(t) {
        return Interval::exact(n);
    }
    if simple_place(t).is_some() {
        let key = last_ident(t);
        if !key.is_empty() {
            return env.get(&key);
        }
    }
    Interval::top()
}

fn eval_method(t: &str, env: &Env) -> Option<Interval> {
    if !t.ends_with(')') {
        return None;
    }
    // Find `.method(` whose argument list closes exactly at the end.
    let open = matching_open(t)?;
    let dot = t[..open].rfind('.')?;
    let recv = &t[..dot];
    let method = &t[dot + 1..open];
    let arg = &t[open + 1..t.len() - 1];
    match method {
        "len" if arg.is_empty() => {
            let base = simple_place(recv)?;
            Some(Interval::of_len(&base, 0))
        }
        "min" => Some(eval(recv, env).clamp_min(&eval(arg, env))),
        "max" => Some(eval(recv, env).clamp_max(&eval(arg, env))),
        "saturating_sub" => Some(
            eval(recv, env)
                .sub(&eval(arg, env))
                .clamp_max(&Interval::exact(0)),
        ),
        "saturating_add" => Some(eval(recv, env).add(&eval(arg, env))),
        _ => None,
    }
}

/// Byte offset of the `(` matching the final `)` of `t`.
fn matching_open(t: &str) -> Option<usize> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' | b']' | b'}' => depth += 1,
            b'(' | b'[' | b'{' => {
                depth -= 1;
                if depth == 0 {
                    return (b[i] == b'(').then_some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn div_interval(l: &Interval, r: &Interval) -> Interval {
    if let (Bound::Int(lo), Bound::Int(hi), Bound::Int(k1), Bound::Int(k2)) =
        (&l.lo, &l.hi, &r.lo, &r.hi)
    {
        if k1 == k2 && *k1 > 0 && *lo >= 0 {
            return Interval {
                lo: Bound::Int(lo / k1),
                hi: Bound::Int(hi / k1),
            };
        }
    }
    Interval::top()
}

/// `x % k` for constant `k`: `[0, k-1]` when x is known non-negative,
/// `[-(k-1), k-1]` otherwise (Rust remainder takes the dividend sign).
fn rem_interval(l: &Interval, r: &Interval) -> Interval {
    if let (Bound::Int(k1), Bound::Int(k2)) = (&r.lo, &r.hi) {
        if k1 == k2 && *k1 > 0 {
            let nonneg = Bound::Int(0).le(&l.lo);
            return Interval {
                lo: Bound::Int(if nonneg { 0 } else { -(k1 - 1) }),
                hi: Bound::Int(k1 - 1),
            };
        }
    }
    Interval::top()
}

/// `x & c` for a constant `c >= 0` is within `[0, c]` for every `x` in
/// two's complement (each result bit is at most the mask bit).
fn and_interval(r: &Interval) -> Interval {
    if let (Bound::Int(k1), Bound::Int(k2)) = (&r.lo, &r.hi) {
        if k1 == k2 && *k1 >= 0 {
            return Interval {
                lo: Bound::Int(0),
                hi: Bound::Int(*k1),
            };
        }
    }
    Interval::top()
}

// ---------------------------------------------------------------------
// Access extraction.
// ---------------------------------------------------------------------

struct Access {
    at: usize,
    /// True for `.get`-style checked access (never an error).
    checked: bool,
    proven: bool,
    what: String,
    detail: String,
}

fn scan_accesses(masked: &str, span: (usize, usize), env: &Env, cx: &Analysis<'_>) -> Vec<Access> {
    let b = masked.as_bytes();
    let (s0, s1) = (span.0, span.1.min(b.len()));
    let text = &masked[s0..s1];
    let mut out = Vec::new();

    // Direct indexing: `base[expr]`.
    let tb = text.as_bytes();
    for (p, &c) in tb.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let base = place_ending_at(text, p);
        if base.is_empty() {
            // `= [..]` literals, attributes, types — or an index into a
            // temporary (`f(x)[i]`), which stays unproven but is rare
            // enough to skip rather than misreport.
            continue;
        }
        let close = match_close(tb, p, b'[', b']');
        let idx = text[p + 1..close].trim();
        if idx.is_empty() {
            continue;
        }
        let (proven, detail) = classify_index(idx, &base, env);
        out.push(Access {
            at: s0 + p,
            checked: false,
            proven,
            what: format!("`{base}[{idx}]`"),
            detail,
        });
    }

    // Checked gathers: `.get(expr)` / `.get_mut(expr)`.
    for needle in [".get(", ".get_mut("] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let base = place_ending_at(text, at);
            if base.is_empty() {
                continue;
            }
            let open = at + needle.len() - 1;
            let close = match_close(tb, open, b'(', b')');
            let idx = text[open + 1..close].trim();
            if idx.is_empty() {
                continue;
            }
            let (proven, detail) = classify_index(idx, &base, env);
            out.push(Access {
                at: s0 + at,
                checked: true,
                proven,
                what: format!("`{base}{}{idx})`", needle),
                detail,
            });
        }
    }

    // `chunks_exact(k)`: panics only on k == 0.
    for needle in [".chunks_exact(", ".chunks_exact_mut("] {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(needle) {
            let at = from + p;
            from = at + needle.len();
            let base = place_ending_at(text, at);
            let open = at + needle.len() - 1;
            let close = match_close(tb, open, b'(', b')');
            let arg = text[open + 1..close].trim();
            let proven = parse_int(arg).map(|k| k > 0).unwrap_or_else(|| {
                cx.ws.nonzero_consts.contains(last_ident(arg).as_str())
                    || Bound::Int(1).le(&eval(arg, env).lo)
            });
            out.push(Access {
                at: s0 + at,
                checked: false,
                proven,
                what: format!("`{base}{needle}{arg})`"),
                detail: "chunk size not provably nonzero".to_string(),
            });
        }
    }

    out.sort_by_key(|a| a.at);
    out
}

/// Classify one index expression against `base`'s length.
fn classify_index(idx: &str, base: &str, env: &Env) -> (bool, String) {
    let len_hi = |off: i128| -> Bound {
        Bound::Len {
            base: base.to_string(),
            off,
        }
    };
    let const_len = env.lens.get(base).copied();
    // Upper-bound check against len(base)+off, or a known const length.
    let fits = |hi: &Bound, off: i128| -> bool {
        hi.le(&len_hi(off)) || const_len.is_some_and(|n| hi.le(&Bound::Int(n.saturating_add(off))))
    };
    if let Some((a, b, inclusive)) = split_range(idx) {
        let av = if a.is_empty() {
            Interval::exact(0)
        } else {
            eval(a, env)
        };
        let lo_ok = Bound::Int(0).le(&av.lo);
        let hi_ok = if b.is_empty() {
            // `a..`: only the start must fit.
            fits(&av.hi, 0)
        } else {
            let bv = eval(b, env);
            fits(&bv.hi, if inclusive { -1 } else { 0 })
        };
        let proven = lo_ok && hi_ok;
        (proven, describe_range(&av, b, inclusive))
    } else {
        let iv = eval(idx, env);
        let proven = Bound::Int(0).le(&iv.lo) && fits(&iv.hi, -1);
        (proven, format!("index ∈ {}", show(&iv)))
    }
}

fn describe_range(av: &Interval, b: &str, inclusive: bool) -> String {
    if b.is_empty() {
        format!("start ∈ {}", show(av))
    } else if inclusive {
        format!("inclusive end `{b}` vs len")
    } else {
        format!("end `{b}` vs len")
    }
}

fn show(iv: &Interval) -> String {
    fn one(b: &Bound) -> String {
        match b {
            Bound::NegInf => "-inf".to_string(),
            Bound::PosInf => "+inf".to_string(),
            Bound::Int(n) => n.to_string(),
            Bound::Len { base, off } => {
                if *off == 0 {
                    format!("len({base})")
                } else if *off > 0 {
                    format!("len({base})+{off}")
                } else {
                    format!("len({base}){off}")
                }
            }
        }
    }
    format!("[{}, {}]", one(&iv.lo), one(&iv.hi))
}

// ---------------------------------------------------------------------
// Micro-parsing helpers.
// ---------------------------------------------------------------------

/// The place expression ending just before byte `at` (`self.buf` before
/// a `[`): its last identifier, or empty when the preceding token is
/// not a plain place.
fn place_ending_at(text: &str, at: usize) -> String {
    let b = text.as_bytes();
    let mut j = at;
    while j > 0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let e = j;
    while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
        j -= 1;
    }
    if j == e || b.get(j).is_some_and(|c| c.is_ascii_digit()) {
        return String::new();
    }
    let word = &text[j..e];
    // A keyword before `[` means a pattern or control construct
    // (`let [a, b] = ..`, `match x[..]` arms), not an index expression.
    const KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "if", "else", "in", "match", "return", "while", "loop", "for", "move",
        "box",
    ];
    if KEYWORDS.contains(&word) {
        return String::new();
    }
    word.to_string()
}

fn match_close(b: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < b.len() {
        if b[i] == oc {
            depth += 1;
        } else if b[i] == cc {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    b.len()
}

/// A dotted chain of plain identifiers (`self.shared.queue`, `xs`);
/// returns the last identifier.
fn simple_place(t: &str) -> Option<String> {
    let t = t
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    let t = t.strip_prefix('*').unwrap_or(t);
    if t.is_empty() {
        return None;
    }
    let mut last = "";
    for seg in t.split('.') {
        let seg = seg.trim();
        if seg.is_empty()
            || !seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            || seg.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return None;
        }
        last = seg;
    }
    Some(last.to_string())
}

pub fn last_ident(t: &str) -> String {
    let t = t.trim().trim_end_matches('*');
    let t = t.trim_end();
    let start = t
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    let s = &t[start..];
    if s.is_empty() || s.starts_with(|c: char| c.is_ascii_digit()) {
        String::new()
    } else {
        s.to_string()
    }
}

fn leading_ident(t: &str) -> Option<&str> {
    let end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    (end > 0 && !t.starts_with(|c: char| c.is_ascii_digit())).then(|| &t[..end])
}

fn strip_word<'a>(t: &'a str, w: &str) -> Option<&'a str> {
    let rest = t.strip_prefix(w)?;
    rest.starts_with(|c: char| c.is_whitespace())
        .then(|| rest.trim_start())
}

/// Split `": ann = init"` / `"= init"` after a binding name.
fn split_annotation(t: &str) -> (Option<&str>, Option<&str>) {
    let t = t.trim_start();
    if let Some(rest) = t.strip_prefix(':') {
        // Annotation runs to the `=` at depth 0.
        let b = rest.as_bytes();
        let mut depth = 0i32;
        for (i, &c) in b.iter().enumerate() {
            match c {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'=' if depth <= 0 => {
                    return (Some(rest[..i].trim()), Some(rest[i + 1..].trim()));
                }
                _ => {}
            }
        }
        (Some(rest.trim()), None)
    } else if let Some(rest) = t.strip_prefix('=') {
        if rest.starts_with('=') {
            (None, None)
        } else {
            (None, Some(rest.trim()))
        }
    } else {
        (None, None)
    }
}

/// `[T; N]` → N.
fn array_len_of_type(ann: &str) -> Option<i128> {
    let inner = ann.trim().strip_prefix('[')?.strip_suffix(']')?;
    let (_, n) = inner.rsplit_once(';')?;
    parse_int(n.trim())
}

/// `[expr; N]` literal → N.
fn array_len_of_literal(rhs: &str) -> Option<i128> {
    let rhs = rhs.trim();
    if !rhs.starts_with('[') {
        return None;
    }
    let close = match_close(rhs.as_bytes(), 0, b'[', b']');
    let inner = &rhs[1..close.min(rhs.len())];
    let (_, n) = inner.rsplit_once(';')?;
    parse_int(n.trim())
}

/// Leading `lhs OP rest` where OP is an assignment operator at depth 0.
fn leading_assign(text: &str) -> Option<(&str, &str, &str)> {
    let b = text.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b';' if depth == 0 => return None,
            b'=' if depth == 0 => {
                let prev = if i > 0 { b[i - 1] } else { b' ' };
                let next = b.get(i + 1).copied().unwrap_or(b' ');
                if next == b'=' || prev == b'!' || prev == b'<' || prev == b'>' {
                    i += 2;
                    continue;
                }
                let (lhs_end, op): (usize, &str) = match prev {
                    b'+' => (i - 1, "+="),
                    b'-' => (i - 1, "-="),
                    b'*' => (i - 1, "*="),
                    b'/' => (i - 1, "/="),
                    b'%' => (i - 1, "%="),
                    b'&' => (i - 1, "&="),
                    b'|' => (i - 1, "|="),
                    b'^' => (i - 1, "^="),
                    _ => (i, "="),
                };
                let lhs = text[..lhs_end].trim();
                if lhs.is_empty() || simple_place(lhs).is_none() {
                    return None;
                }
                return Some((lhs, op, &text[i + 1..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn strip_cast(t: &str) -> &str {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in 0..b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'a' if depth == 0
                && t[i..].starts_with("as ")
                && i > 0
                && b[i - 1].is_ascii_whitespace() =>
            {
                return t[..i].trim_end();
            }
            _ => {}
        }
    }
    t
}

fn strip_parens(t: &str) -> &str {
    let mut t = t.trim();
    while t.starts_with('(') && t.ends_with(')') {
        let b = t.as_bytes();
        if match_close(b, 0, b'(', b')') != t.len() - 1 {
            break;
        }
        t = t[1..t.len() - 1].trim();
    }
    t
}

fn split_addsub(t: &str) -> Option<(&str, char, &str)> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' | b']' | b'}' => depth += 1,
            b'(' | b'[' | b'{' => depth -= 1,
            c @ (b'+' | b'-') if depth == 0 && i > 0 => {
                // Binary only: the left side must end in an operand.
                let prev = t[..i].trim_end().chars().last();
                if matches!(prev, Some(p) if p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']')
                {
                    // `..` ranges and `->` never reach here (split_range
                    // and stmt forms run first); exclude `e-1` exponents
                    // by requiring a non-digit-dot operand.
                    return Some((&t[..i], c as char, &t[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

fn split_muldiv(t: &str) -> Option<(&str, char, &str)> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    for i in (0..b.len()).rev() {
        match b[i] {
            b')' | b']' | b'}' => depth += 1,
            b'(' | b'[' | b'{' => depth -= 1,
            c @ (b'*' | b'/' | b'%' | b'&') if depth == 0 && i > 0 && i + 1 < b.len() => {
                // Reject `&&`, `**` (not Rust), deref `*x`, `&x`.
                if b[i + 1] == c || b[i - 1] == c {
                    continue;
                }
                let prev = t[..i].trim_end().chars().last();
                if matches!(prev, Some(p) if p.is_ascii_alphanumeric() || p == '_' || p == ')' || p == ']')
                {
                    return Some((&t[..i], c as char, &t[i + 1..]));
                }
            }
            _ => {}
        }
    }
    None
}

/// `a..b` / `a..=b` at depth 0 → (a, b, inclusive).
fn split_range(t: &str) -> Option<(&str, &str, bool)> {
    let b = t.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i + 1 < b.len() || (i < b.len() && depth == 0) {
        if i >= b.len() {
            break;
        }
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'.' if depth == 0 && b.get(i + 1) == Some(&b'.') => {
                let inclusive = b.get(i + 2) == Some(&b'=');
                let a = t[..i].trim();
                let rest = &t[i + 2 + usize::from(inclusive)..];
                return Some((a, rest.trim(), inclusive));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn split_top<'a>(t: &'a str, sep: &str) -> Vec<&'a str> {
    let b = t.as_bytes();
    let sb = sep.as_bytes();
    let mut depth = 0i32;
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            _ if depth == 0 && b[i..].starts_with(sb) => {
                parts.push(&t[start..i]);
                i += sb.len();
                start = i;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&t[start..]);
    parts
}

/// Strip `.rev()` / `.step_by(..)` wrappers from a range iterator.
fn strip_range_adapters(t: &str) -> &str {
    let mut t = t.trim();
    loop {
        if let Some(p) = t.strip_suffix(".rev()") {
            t = strip_parens(p);
            continue;
        }
        if t.ends_with(')') {
            if let Some(open) = matching_open(t) {
                if let Some(dot) = t[..open].rfind(".step_by") {
                    if dot + ".step_by".len() == open {
                        t = strip_parens(&t[..dot]);
                        continue;
                    }
                }
            }
        }
        return t;
    }
}

/// Strip `.iter()`-style adapters from a place chain.
fn strip_iter_adapters(t: &str) -> &str {
    let mut t = t.trim();
    loop {
        let mut changed = false;
        for adapt in [".iter()", ".iter_mut()", ".copied()", ".cloned()"] {
            if let Some(p) = t.strip_suffix(adapt) {
                t = p.trim_end();
                changed = true;
            }
        }
        if !changed {
            return strip_parens(t.strip_prefix('&').unwrap_or(t));
        }
    }
}

/// All identifiers a pattern binds (conservative word scan).
fn pat_idents(pat: &str) -> Vec<String> {
    pat.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| {
            !s.is_empty()
                && !s.starts_with(|c: char| c.is_ascii_digit())
                && *s != "mut"
                && *s != "ref"
                && *s != "_"
        })
        .map(str::to_string)
        .collect()
}

/// The sole identifier a simple pattern binds (`i`, `&x`, `mut v`).
fn single_ident(pat: &str) -> Option<String> {
    let ids = pat_idents(pat);
    (ids.len() == 1).then(|| ids[0].clone())
}

/// First element of a tuple pattern `(i, x)`.
fn tuple_first(pat: &str) -> Option<String> {
    let inner = pat.trim().strip_prefix('(')?;
    let first = inner.split(',').next()?;
    single_ident(first)
}

fn parse_int(t: &str) -> Option<i128> {
    let t = t.trim().replace('_', "");
    let (neg, t) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t.as_str()),
    };
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x") {
        (h, 16)
    } else {
        (t, 10)
    };
    let end = digits
        .find(|c: char| !c.is_ascii_alphanumeric())
        .unwrap_or(digits.len());
    if end == 0 || digits[end..].starts_with('.') {
        return None;
    }
    let (num, suffix) = digits.split_at(end);
    // Allow `8usize`-style suffixes: digits then a type name.
    let split = num.find(|c: char| !c.is_digit(radix)).unwrap_or(num.len());
    if split == 0 {
        return None;
    }
    let (core, tail) = num.split_at(split);
    let ok_suffix = |s: &str| {
        s.is_empty()
            || [
                "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128",
                "isize",
            ]
            .contains(&s)
    };
    if !ok_suffix(tail) || !suffix.is_empty() && !ok_suffix(suffix) {
        return None;
    }
    let v = i128::from_str_radix(core, radix).ok()?;
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(pairs: &[(&str, Interval)]) -> Env {
        let mut e = Env::default();
        for (k, v) in pairs {
            e.set(k, v.clone());
        }
        e
    }

    #[test]
    fn eval_handles_literals_places_and_arithmetic() {
        let env = env_with(&[("i", Interval::exact(3))]);
        assert_eq!(eval("7", &env), Interval::exact(7));
        assert_eq!(eval("0x10", &env), Interval::exact(16));
        assert_eq!(eval("8usize", &env), Interval::exact(8));
        assert_eq!(eval("i + 1", &env), Interval::exact(4));
        assert_eq!(eval("i - 1", &env), Interval::exact(2));
        assert_eq!(eval("2 * i", &env), Interval::exact(6));
        assert_eq!(eval("(i + 1) as usize", &env), Interval::exact(4));
        assert_eq!(eval("self.i", &env), Interval::exact(3));
        assert_eq!(eval("unknown", &env), Interval::top());
    }

    #[test]
    fn eval_len_and_clamps() {
        let env = Env::default();
        let l = eval("xs.len()", &env);
        assert_eq!(l, Interval::of_len("xs", 0));
        let lm1 = eval("xs.len() - 1", &env);
        assert_eq!(
            lm1.hi,
            Bound::Len {
                base: "xs".into(),
                off: -1
            }
        );
        let clamped = eval("j.min(7)", &env_with(&[("j", Interval::top())]));
        assert_eq!(clamped.hi, Bound::Int(7));
        let sat = eval("n.saturating_sub(1)", &env);
        assert_eq!(sat.lo, Bound::Int(0), "{sat:?}");
    }

    #[test]
    fn eval_mask_and_rem() {
        let env = env_with(&[("i", Interval::top())]);
        let m = eval("i & 63", &env);
        assert_eq!(m.lo, Bound::Int(0));
        assert_eq!(m.hi, Bound::Int(63));
        let nn = env_with(&[(
            "i",
            Interval {
                lo: Bound::Int(0),
                hi: Bound::PosInf,
            },
        )]);
        let r = eval("i % 16", &nn);
        assert_eq!(r.lo, Bound::Int(0));
        assert_eq!(r.hi, Bound::Int(15));
    }

    #[test]
    fn refinement_from_comparisons() {
        let mut env = env_with(&[(
            "i",
            Interval {
                lo: Bound::Int(0),
                hi: Bound::PosInf,
            },
        )]);
        env.set("n", Interval::of_len("xs", 0));
        apply_cmp("i < n", true, &mut env);
        assert_eq!(
            env.get("i").hi,
            Bound::Len {
                base: "xs".into(),
                off: -1
            }
        );
        let mut env2 = env_with(&[("i", Interval::top())]);
        apply_cmp("i >= 2", true, &mut env2);
        assert_eq!(env2.get("i").lo, Bound::Int(2));
        // Negated: else-branch of `i < 3` gives i >= 3.
        let mut env3 = env_with(&[("i", Interval::top())]);
        apply_cmp("i < 3", false, &mut env3);
        assert_eq!(env3.get("i").lo, Bound::Int(3));
    }

    #[test]
    fn for_bindings_cover_ranges_enumerate_chunks() {
        let mut env = Env::default();
        apply_for_binding("i", "0..xs.len()", &mut env);
        let i = env.get("i");
        assert_eq!(i.lo, Bound::Int(0));
        assert_eq!(
            i.hi,
            Bound::Len {
                base: "xs".into(),
                off: -1
            }
        );
        let mut env2 = Env::default();
        apply_for_binding("(k, v)", "cols.iter().enumerate()", &mut env2);
        assert_eq!(
            env2.get("k").hi,
            Bound::Len {
                base: "cols".into(),
                off: -1
            }
        );
        let mut env3 = Env::default();
        apply_for_binding("c", "data.chunks_exact(8)", &mut env3);
        assert_eq!(env3.lens.get("c"), Some(&8));
        let mut env4 = Env::default();
        apply_for_binding("i", "(0..n).rev()", &mut env4);
        assert_eq!(env4.get("i").lo, Bound::Int(0));
    }

    #[test]
    fn classify_proves_and_rejects() {
        let mut env = Env::default();
        apply_for_binding("i", "0..xs.len()", &mut env);
        let (ok, _) = classify_index("i", "xs", &env);
        assert!(ok);
        let (bad, _) = classify_index("i + 1", "xs", &env);
        assert!(!bad);
        // Constant-length chunk: c[7] proven, c[8] not.
        let mut env2 = Env::default();
        apply_for_binding("c", "data.chunks_exact(8)", &mut env2);
        let (ok7, _) = classify_index("7", "c", &env2);
        assert!(ok7);
        let (bad8, _) = classify_index("8", "c", &env2);
        assert!(!bad8);
        // Range form: xs[0..n] with n = xs.len() is proven.
        let mut env3 = Env::default();
        apply_plain("let n = xs.len();", &mut env3);
        let (okr, _) = classify_index("0..n", "xs", &env3);
        assert!(okr);
        let (badr, _) = classify_index("0..=n", "xs", &env3);
        assert!(!badr, "inclusive end == len must fail");
    }

    #[test]
    fn plain_statements_update_the_env() {
        let mut env = Env::default();
        apply_plain("let mut i = 0", &mut env);
        assert_eq!(env.get("i"), Interval::exact(0));
        apply_plain("i += 2", &mut env);
        assert_eq!(env.get("i"), Interval::exact(2));
        apply_plain("let a = [0.0f32; 16]", &mut env);
        assert_eq!(env.lens.get("a"), Some(&16));
        apply_plain("let b: [f32; 4] = frob()", &mut env);
        assert_eq!(env.lens.get("b"), Some(&4));
        // Nested mutation havocs.
        apply_plain("take(&mut i)", &mut env);
        assert_eq!(env.get("i"), Interval::top());
    }

    #[test]
    fn closure_compound_assign_havocs() {
        let mut env = Env::default();
        apply_plain("let mut j = 1", &mut env);
        apply_plain("xs.iter().for_each(|x| j += x)", &mut env);
        assert_eq!(env.get("j"), Interval::top());
    }
}
