//! Panic-reachability: prove the reconstruction hot path total.
//!
//! From the declared roots (`root` lines in `ci/analyze.conf`, or
//! `--roots` on the command line) the pass walks the conservative call
//! graph and token-scans every reachable function body for panic
//! sources:
//!
//! * panicking macros — `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*` compiles out of release builds and is exempt)
//! * `.unwrap()` / `.unwrap_err()` / `.expect(..)` / `.expect_err(..)`
//! * `[..]` indexing and slicing (the `Index` operator panics on
//!   out-of-range)
//! * integer `/` and `%` whose divisor is not provably nonzero — a
//!   nonzero integer literal and workspace consts defined as nonzero
//!   integer literals are accepted; float arithmetic is skipped when
//!   either operand shows float evidence (literal, `f32`/`f64` cast,
//!   or an identifier declared with a float type in the workspace)
//!
//! A site can be exempted with `// analyze: allow(panic, reason =
//! "...")`; the reason is mandatory and a bare exemption is itself a
//! violation. Each finding names the shortest root→site call chain so
//! the report is actionable without re-running the graph by hand.

use super::{Analysis, Pass, PassOutput};
use crate::callgraph;
use crate::rules::Violation;
use std::collections::BTreeSet;

pub struct PanicReachability;

const PANIC_MACROS: &[&str] = &[
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

const PANIC_METHODS: &[&str] = &[".unwrap()", ".unwrap_err()", ".expect(", ".expect_err("];

impl Pass for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachable"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let roots: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && !f.cfg_off
                    && cx
                        .conf
                        .roots
                        .iter()
                        .any(|r| f.qual == *r || f.qual.starts_with(&format!("{r}::")))
            })
            .map(|(i, _)| i)
            .collect();
        let pred = cx.graph.reach(&roots);

        for &fi in pred.keys() {
            let f = &ws.fns[fi];
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            for (at, what) in scan_panics(masked, b0, b1, &ws.nonzero_consts, &ws.float_idents) {
                let line = callgraph::line_of(masked, at);
                if file.test_lines.get(line).copied().unwrap_or(false) {
                    continue;
                }
                match file.lexed.analyze_allowed(line, "panic") {
                    Some(a) => {
                        out.used(&file.rel, a.line, "panic");
                        if a.reason.is_some() {
                            continue;
                        }
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "panic-allow",
                            msg: format!(
                                "exemption for {what} is missing its reason — write \
                                 analyze: allow(panic, reason = \"...\")"
                            ),
                        });
                    }
                    None => {
                        let chain = callgraph::chain(ws, &pred, fi);
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "panic-reachable",
                            msg: format!("{what} in `{}` ({})", f.qual, render_chain(&chain)),
                        });
                    }
                }
            }
        }
    }
}

fn render_chain(chain: &[String]) -> String {
    if chain.len() <= 1 {
        return "a declared root".to_string();
    }
    let shown: Vec<&str> = if chain.len() > 5 {
        let mut v: Vec<&str> = chain[..2].iter().map(String::as_str).collect();
        v.push("...");
        v.push(chain[chain.len() - 1].as_str());
        v
    } else {
        chain.iter().map(String::as_str).collect()
    };
    format!("via {}", shown.join(" -> "))
}

/// Token-scan one body span for panic sources. Returns (offset, label).
pub fn scan_panics(
    masked: &str,
    b0: usize,
    b1: usize,
    nonzero_consts: &BTreeSet<String>,
    float_idents: &BTreeSet<String>,
) -> Vec<(usize, String)> {
    let b = masked.as_bytes();
    let end = b1.min(b.len());
    let body = &masked[b0..end];
    let mut out = Vec::new();

    for needle in PANIC_MACROS {
        let mut from = 0usize;
        while let Some(p) = body[from..].find(needle) {
            let at = b0 + from + p;
            from += p + needle.len();
            // Word boundary: `debug_assert!` must not match `assert!`.
            if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
                continue;
            }
            out.push((at, format!("panicking macro `{needle}`")));
        }
    }

    for needle in PANIC_METHODS {
        let mut from = 0usize;
        while let Some(p) = body[from..].find(needle) {
            let at = b0 + from + p;
            from += p + needle.len();
            out.push((at, format!("`{}`", needle.trim_end_matches('('))));
        }
    }

    // Indexing / slicing: `[` preceded (modulo whitespace) by an
    // identifier char, `)`, `]` or `?`. Attribute (`#[`), macro
    // (`vec![`) and literal/type brackets have other predecessors.
    for (i, &c) in b[b0..end].iter().enumerate() {
        let at = b0 + i;
        if c != b'[' {
            continue;
        }
        let mut j = at;
        while j > b0 && b[j - 1].is_ascii_whitespace() {
            j -= 1;
        }
        if j == b0 {
            continue;
        }
        let p = b[j - 1];
        if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' || p == b'?' {
            // `let [a, b] = ..` / `for [x, y] in ..` destructuring
            // patterns follow a keyword, not a place expression.
            if p.is_ascii_alphanumeric() || p == b'_' {
                let e = j;
                let mut s = j;
                while s > b0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
                    s -= 1;
                }
                const KEYWORDS: &[&str] = &[
                    "let", "in", "return", "if", "else", "match", "loop", "while", "for", "move",
                    "as", "break", "continue", "where", "unsafe", "ref", "mut",
                ];
                if KEYWORDS.contains(&&masked[s..e]) {
                    continue;
                }
            }
            out.push((at, "`[..]` indexing/slicing".to_string()));
        }
    }

    // Integer division / remainder with an unproven divisor.
    for (i, &c) in b[b0..end].iter().enumerate() {
        let at = b0 + i;
        if c != b'/' && c != b'%' {
            continue;
        }
        let op = c as char;
        let mut rhs = at + 1;
        if b.get(rhs) == Some(&b'=') {
            rhs += 1; // `/=`, `%=`
        }
        if lhs_is_float(masked, b0, at, float_idents) {
            continue;
        }
        match divisor_class(masked, rhs, end, nonzero_consts, float_idents) {
            DivisorClass::ProvenNonzero | DivisorClass::Float => {}
            DivisorClass::Unproven(tok) => {
                out.push((at, format!("integer `{op}` with unproven divisor `{tok}`")));
            }
        }
    }

    out.sort();
    out
}

/// Backward float evidence for the dividend: a float literal
/// (`1.0`, `2e3`), an `f32`/`f64` cast immediately to the left, or an
/// identifier declared with a float type somewhere in the workspace.
fn lhs_is_float(masked: &str, b0: usize, at: usize, float_idents: &BTreeSet<String>) -> bool {
    let b = masked.as_bytes();
    let mut j = at;
    while j > b0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let e = j;
    while j > b0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_' || b[j - 1] == b'.') {
        j -= 1;
    }
    if j == e {
        return false;
    }
    let tok = &masked[j..e];
    let last = tok.rsplit('.').next().unwrap_or(tok);
    tok == "f32"
        || tok == "f64"
        || tok.ends_with("f32")
        || tok.ends_with("f64")
        || (tok.starts_with(|c: char| c.is_ascii_digit()) && tok.contains('.'))
        || float_idents.contains(last)
}

enum DivisorClass {
    ProvenNonzero,
    Float,
    Unproven(String),
}

/// Classify the token(s) to the right of a `/` or `%`.
fn divisor_class(
    masked: &str,
    mut i: usize,
    end: usize,
    nonzero_consts: &BTreeSet<String>,
    float_idents: &BTreeSet<String>,
) -> DivisorClass {
    let b = masked.as_bytes();
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if i >= end {
        return DivisorClass::Unproven("<eof>".to_string());
    }
    if b[i].is_ascii_digit() {
        let s = i;
        while i < end && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.') {
            i += 1;
        }
        let tok = &masked[s..i];
        if tok.contains('.') || tok.ends_with("f32") || tok.ends_with("f64") || tok.contains('e') {
            return DivisorClass::Float;
        }
        let digits: String = tok.chars().filter(|c| c.is_ascii_digit()).collect();
        return if digits.chars().all(|c| c == '0') {
            DivisorClass::Unproven(tok.to_string())
        } else {
            DivisorClass::ProvenNonzero
        };
    }
    if b[i].is_ascii_alphabetic() || b[i] == b'_' {
        // Identifier chain: `self.width`, `cfg::TEXTURE_TILE`.
        let s = i;
        while i < end
            && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.' || b[i] == b':')
        {
            i += 1;
        }
        let chain = &masked[s..i];
        if i < end && b[i] == b'(' {
            return DivisorClass::Unproven(format!("{chain}(..)"));
        }
        let last = chain.rsplit(['.', ':']).next().unwrap_or(chain);
        if nonzero_consts.contains(last) {
            return DivisorClass::ProvenNonzero;
        }
        if float_idents.contains(last) {
            return DivisorClass::Float;
        }
        // `x / n as f32` — a float cast of the divisor.
        let mut j = i;
        while j < end && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if masked[j..].starts_with("as f32") || masked[j..].starts_with("as f64") {
            return DivisorClass::Float;
        }
        return DivisorClass::Unproven(last.to_string());
    }
    DivisorClass::Unproven(
        masked[i..(i + 8).min(end)]
            .split_whitespace()
            .next()
            .unwrap_or("<expr>")
            .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<String> {
        let lx = crate::lexer::lex(src);
        let mut consts = BTreeSet::new();
        consts.insert("LANE_WIDTH".to_string());
        let mut floats = BTreeSet::new();
        floats.insert("sigma".to_string());
        scan_panics(&lx.masked, 0, lx.masked.len(), &consts, &floats)
            .into_iter()
            .map(|(_, w)| w)
            .collect()
    }

    #[test]
    fn macros_flagged_debug_assert_exempt() {
        let got = scan("fn f() { assert!(a); debug_assert!(b); assert_eq!(c, d); }");
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(got.iter().all(|w| w.contains("assert")));
    }

    #[test]
    fn unwrap_expect_family() {
        let got =
            scan("fn f() { a.unwrap(); b.expect(\"why\"); c.unwrap_or(0); d.unwrap_or_else(e); }");
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn indexing_flagged_but_not_attributes_macros_or_types() {
        let got = scan("#[derive(Debug)]\nfn f(v: &[f32], a: [f32; 8]) { let x = v[0]; let y = vec![1]; let z: [u8; 2] = [0, 1]; }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("indexing"));
    }

    #[test]
    fn division_literal_and_const_divisors_are_proven() {
        let got = scan("fn f(a: usize) { let x = a / 2; let y = a % LANE_WIDTH; let z = a / n; }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains('n'), "{got:?}");
    }

    #[test]
    fn float_division_is_skipped() {
        let got = scan("fn f(z: f32, n: usize) { let a = 1.0 / z; let b = x / n as f32; let c = y as f32 / w; }");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn float_typed_identifiers_are_float_evidence() {
        let got =
            scan("fn f(x: u32) { let a = p / self.sigma; let b = obj.sigma / q; let c = x / q; }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains('q'), "{got:?}");
    }

    #[test]
    fn slicing_after_calls_and_question_mark() {
        let got = scan("fn f() { rows[s0..s1]; g()[0]; h?[1]; }");
        assert_eq!(got.len(), 3, "{got:?}");
    }
}
