//! Determinism: exported values must not depend on hash-map order.
//!
//! `benchdiff` compares serialized benchmark records byte-for-byte, and
//! trace replay assumes a stable event order — so in result-producing
//! crates (`result-crate` lines in `ci/analyze.conf`) iterating a
//! `HashMap`/`HashSet` into anything that is returned or serialized is
//! a latent flake. The pass tracks identifiers bound to hash
//! collections in each file and flags order-dependent consumption:
//! `.iter()`, `.keys()`, `.values()`, `.drain()`, `for _ in &map`, and
//! friends. `BTreeMap`/`BTreeSet` are the sanctioned alternatives;
//! sites that sort after collecting can carry
//! `// analyze: allow(determinism, reason = "...")`.

use super::{Analysis, Pass, PassOutput};
use crate::rules::Violation;
use std::collections::BTreeSet;

pub struct Determinism;

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        for file in &ws.files {
            let crate_name = &ws.crates[file.crate_idx].name;
            if !cx.conf.result_crates.contains(crate_name) {
                continue;
            }
            let tracked = tracked_idents(&file.lexed.masked);
            if tracked.is_empty() {
                continue;
            }
            out.stat("files_scanned", 1);
            for (idx, text) in file.lexed.masked.lines().enumerate() {
                let line = idx + 1;
                if file.test_lines.get(line).copied().unwrap_or(false) {
                    continue;
                }
                for ident in &tracked {
                    let Some(what) = order_dependent_use(text, ident) else {
                        continue;
                    };
                    if let Some(a) = file.lexed.analyze_allowed(line, "determinism") {
                        out.used(&file.rel, a.line, "determinism");
                        if a.reason.is_some() {
                            continue;
                        }
                    }
                    out.violations.push(Violation {
                        path: file.rel.clone(),
                        line,
                        rule: "determinism",
                        msg: format!(
                            "`{ident}` is a HashMap/HashSet and `{what}` iterates it in \
                             arbitrary order; use a BTree collection or sort before export"
                        ),
                    });
                }
            }
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` anywhere in the file:
/// `let m = HashMap::new()`, `let m: HashMap<..>`, struct fields and
/// params `m: HashMap<..>`.
pub(crate) fn tracked_idents(masked: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for text in masked.lines() {
        for marker in ["HashMap", "HashSet"] {
            let Some(at) = find_word(text, marker) else {
                continue;
            };
            // `let NAME` on the same line wins.
            if let Some(let_at) = find_word(text, "let") {
                if let_at < at {
                    if let Some(name) = next_ident(&text[let_at + 3..]) {
                        if name != "mut" {
                            out.insert(name);
                        } else if let Some(name) = next_ident(&text[let_at + 3..].trim_start()[3..])
                        {
                            out.insert(name);
                        }
                        continue;
                    }
                }
            }
            // Otherwise `NAME: HashMap<..>` (field / param), where the
            // `:` is not part of `::`.
            let head = &text[..at];
            let head = head.trim_end();
            if let Some(h) = head.strip_suffix(':') {
                if !h.ends_with(':') {
                    if let Some(name) = last_ident(h) {
                        out.insert(name);
                    }
                }
            }
        }
    }
    out
}

/// If `text` consumes `ident` in iteration order, name the consumer.
pub(crate) fn order_dependent_use(text: &str, ident: &str) -> Option<String> {
    let mut from = 0usize;
    while let Some(p) = text[from..].find(ident) {
        let at = from + p;
        from = at + ident.len();
        let b = text.as_bytes();
        let before_ok = at == 0 || {
            let c = b[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if !before_ok {
            continue;
        }
        let rest = &text[at + ident.len()..];
        for m in ITER_METHODS {
            if rest.starts_with(m) {
                return Some(format!("{ident}{}", m.trim_end_matches('(')));
            }
        }
        // `for x in &map` / `for (k, v) in map`.
        let head = text[..at].trim_end();
        let head = head.strip_suffix('&').unwrap_or(head).trim_end();
        if head.ends_with(" in") || head.ends_with("\tin") {
            let after = rest.trim_start();
            if after.is_empty() || after.starts_with('{') {
                return Some(format!("for _ in {ident}"));
            }
        }
    }
    None
}

fn find_word(text: &str, word: &str) -> Option<usize> {
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        from = at + word.len();
        let before = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let end = at + word.len();
        let after = end >= text.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if before && after {
            return Some(at);
        }
    }
    None
}

fn next_ident(text: &str) -> Option<String> {
    let t = text.trim_start();
    let end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    (end > 0).then(|| t[..end].to_string())
}

fn last_ident(text: &str) -> Option<String> {
    let t = text.trim_end();
    let start = t
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|p| p + 1)
        .unwrap_or(0);
    (start < t.len()).then(|| t[start..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_are_tracked_through_let_and_fields() {
        let src = "let mut counts = HashMap::new();\nstruct S { totals: HashMap<String, u64> }\nuse std::collections::HashMap;\n";
        let t = tracked_idents(src);
        assert!(t.contains("counts"), "{t:?}");
        assert!(t.contains("totals"), "{t:?}");
        assert!(!t.contains("collections"), "{t:?}");
        assert!(!t.contains("HashMap"), "{t:?}");
    }

    #[test]
    fn iteration_is_flagged_lookup_is_not() {
        assert!(order_dependent_use("for (k, v) in &counts {", "counts").is_some());
        assert!(order_dependent_use("counts.iter().collect::<Vec<_>>()", "counts").is_some());
        assert!(order_dependent_use("counts.keys()", "counts").is_some());
        assert!(order_dependent_use("counts.get(\"k\")", "counts").is_none());
        assert!(order_dependent_use("counts.insert(k, v);", "counts").is_none());
        assert!(order_dependent_use("recounts.iter()", "counts").is_none());
    }
}
