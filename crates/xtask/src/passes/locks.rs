//! Lock discipline: keep the producer/consumer overlap deadlock-free.
//!
//! Three rules over the guard scopes extracted by [`crate::guards`] and
//! the conservative call graph:
//!
//! * `lock-order` — a cycle in the lock-acquisition-order graph. An
//!   edge `A -> B` is recorded whenever lock `B` is acquired (directly,
//!   or transitively through a call) while a guard on `A` is live; a
//!   cycle means two threads can each hold one lock and wait for the
//!   other.
//! * `lock-blocking` — a call that can reach a declared blocking
//!   operation (`blocking` lines in `ci/analyze.conf`: ring push/pop,
//!   channel send/recv, condvar waits, parallel-fs I/O) while a guard
//!   is live. Blocking under a lock stalls every other thread that
//!   needs the lock for as long as the blocked thread sleeps.
//!   Exception: `cv.wait(&mut g)` atomically releases `g`'s own mutex —
//!   the call is only flagged for *other* guards held across it.
//! * `lock-wait-loop` — a `Condvar::wait`/`wait_timeout` call not
//!   syntactically inside a `while`/`loop`: condvars wake spuriously,
//!   so the predicate must be re-checked.
//!
//! Lock identity is textual: `crate::SelfType::receiver` (e.g.
//! `ct_sync::RingBuffer::self.shared.state`). Two syntactically
//! different paths to the same mutex are two keys (missed orderings,
//! never false aliasing); see DESIGN §6c for the full envelope.
//! Exemptions: `analyze: allow(lock, reason = "...")`, reason
//! mandatory.

use super::{Analysis, Pass, PassOutput};
use crate::callgraph::line_of;
use crate::guards;
use crate::rules::Violation;
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub struct LockDiscipline;

impl Pass for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let n = ws.fns.len();

        // Which functions may block? Seed from the declared `blocking`
        // prefixes, then walk the call graph backwards; `next[f]` is the
        // callee one step closer to the blocking site, for reporting.
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, es) in cx.graph.edges.iter().enumerate() {
            for &(t, _) in es {
                rev[t].push(i);
            }
        }
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            let declared = cx
                .conf
                .blocking
                .iter()
                .any(|r| f.qual == *r || f.qual.starts_with(&format!("{r}::")));
            if declared {
                next[i] = Some(i);
                queue.push_back(i);
            }
        }
        while let Some(t) = queue.pop_front() {
            for &caller in &rev[t] {
                if next[caller].is_none() {
                    next[caller] = Some(t);
                    queue.push_back(caller);
                }
            }
        }

        // Guard scopes and direct lock keys per function.
        let mut fn_guards: Vec<Vec<guards::Guard>> = vec![Vec::new(); n];
        let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let masked = &ws.files[f.file].lexed.masked;
            let gs = guards::guard_scopes(masked, b0, b1);
            for g in &gs {
                direct[i].insert(lock_key(ws, i, &g.receiver));
            }
            fn_guards[i] = gs;
        }

        // Transitive acquire sets, to a fixpoint. The graph is small
        // (hundreds of fns, a handful of lock keys) so the naive
        // iteration converges in a few rounds.
        let mut acq = direct.clone();
        loop {
            let mut changed = false;
            for i in 0..n {
                for &(t, _) in &cx.graph.edges[i] {
                    if t == i {
                        continue;
                    }
                    let add: Vec<String> = acq[t].difference(&acq[i]).cloned().collect();
                    if !add.is_empty() {
                        acq[i].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut reported: BTreeSet<(usize, usize, &'static str)> = BTreeSet::new();
        // Acquisition-order edges: key -> key, anchored at the first
        // site that witnesses the edge.
        let mut order: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();

        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test || f.cfg_off {
                continue;
            }
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            let waits = f
                .body
                .map(|(b0, b1)| guards::wait_sites(masked, b0, b1))
                .unwrap_or_default();
            for g in &fn_guards[i] {
                let held = lock_key(ws, i, &g.receiver);
                // Nested direct acquisitions.
                for g2 in &fn_guards[i] {
                    if g.covers(g2.at) {
                        let inner = lock_key(ws, i, &g2.receiver);
                        if inner != held {
                            record_edge(&mut order, held.clone(), inner, f.file, g2.at);
                        }
                    }
                }
                for &(t, at) in &cx.graph.edges[i] {
                    if !g.covers(at) {
                        continue;
                    }
                    let line = line_of(masked, at);
                    if file.test_lines.get(line).copied().unwrap_or(false) {
                        continue;
                    }
                    // Transitive acquisitions through the callee.
                    for inner in &acq[t] {
                        if *inner != held {
                            record_edge(&mut order, held.clone(), inner.clone(), f.file, at);
                        }
                    }
                    // Blocking call under the guard.
                    let Some(first_hop) = next[t] else { continue };
                    if is_wait_releasing(masked, at, &waits, g) {
                        continue;
                    }
                    if !reported.insert((f.file, line, "lock-blocking")) {
                        continue;
                    }
                    match file.lexed.analyze_allowed(line, "lock") {
                        Some(a) => {
                            out.used(&file.rel, a.line, "lock");
                            if a.reason.is_none() {
                                out.violations
                                    .push(missing_reason(file, line, "blocking call"));
                            }
                        }
                        None => {
                            let sink = blocking_chain(ws, &next, t);
                            out.violations.push(Violation {
                                path: file.rel.clone(),
                                line,
                                rule: "lock-blocking",
                                msg: format!(
                                    "call to `{}` can block ({sink}) while `{held}` is held \
                                     (acquired line {})",
                                    ws.fns[first_hop].qual,
                                    line_of(masked, g.at),
                                ),
                            });
                        }
                    }
                }
            }

            // Condvar waits must re-check their predicate in a loop.
            for w in &waits {
                let line = line_of(masked, w.at);
                if w.in_loop
                    || file.test_lines.get(line).copied().unwrap_or(false)
                    || !reported.insert((f.file, line, "lock-wait-loop"))
                {
                    continue;
                }
                match file.lexed.analyze_allowed(line, "lock") {
                    Some(a) => {
                        out.used(&file.rel, a.line, "lock");
                        if a.reason.is_none() {
                            out.violations
                                .push(missing_reason(file, line, "wait outside a loop"));
                        }
                    }
                    None => out.violations.push(Violation {
                        path: file.rel.clone(),
                        line,
                        rule: "lock-wait-loop",
                        msg: format!(
                            "condvar wait in `{}` is not inside a `while`/`loop` predicate \
                             re-check — condvars wake spuriously",
                            f.qual
                        ),
                    }),
                }
            }
        }

        // Drop order edges the code exempts (reason mandatory), then
        // look for a cycle in what remains.
        type KeptEdge<'a> = (&'a (String, String), &'a (usize, usize));
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut kept: Vec<KeptEdge> = Vec::new();
        for (edge, site) in &order {
            let file = &ws.files[site.0];
            let line = line_of(&file.lexed.masked, site.1);
            if file.test_lines.get(line).copied().unwrap_or(false) {
                continue;
            }
            if let Some(a) = file.lexed.analyze_allowed(line, "lock") {
                out.used(&file.rel, a.line, "lock");
                if a.reason.is_none() && reported.insert((site.0, line, "lock-allow")) {
                    out.violations
                        .push(missing_reason(file, line, "lock-order edge"));
                }
                continue;
            }
            adj.entry(edge.0.as_str())
                .or_default()
                .push(edge.1.as_str());
            adj.entry(edge.1.as_str()).or_default();
            kept.push((edge, site));
        }
        if let Some(cycle) = find_cycle(&adj) {
            // Anchor the report at the lexically smallest participating
            // edge site so re-runs are stable.
            let on_cycle = |a: &str, b: &str| cycle.windows(2).any(|w| w[0] == a && w[1] == b);
            let site = kept
                .iter()
                .filter(|(e, _)| on_cycle(&e.0, &e.1))
                .map(|&(_, s)| *s)
                .min();
            if let Some((fi, at)) = site {
                let file = &ws.files[fi];
                out.violations.push(Violation {
                    path: file.rel.clone(),
                    line: line_of(&file.lexed.masked, at),
                    rule: "lock-order",
                    msg: format!(
                        "lock-order cycle (potential deadlock): {}",
                        cycle.join(" -> ")
                    ),
                });
            }
        }
    }
}

/// Textual lock identity: crate, enclosing type, receiver path.
fn lock_key(ws: &Workspace, fi: usize, receiver: &str) -> String {
    let f = &ws.fns[fi];
    let krate = f.module.first().map(String::as_str).unwrap_or("");
    match &f.self_type {
        Some(t) => format!("{krate}::{t}::{receiver}"),
        None => format!("{krate}::{receiver}"),
    }
}

fn record_edge(
    order: &mut BTreeMap<(String, String), (usize, usize)>,
    from: String,
    to: String,
    file: usize,
    at: usize,
) {
    order.entry((from, to)).or_insert((file, at));
}

/// `cv.wait(&mut g)` releases `g`'s mutex for the duration of the wait:
/// if the call at `at` is a wait site whose arguments name this guard's
/// binding, it does not block *under* that guard.
fn is_wait_releasing(
    masked: &str,
    at: usize,
    waits: &[guards::WaitSite],
    g: &guards::Guard,
) -> bool {
    if !masked[at..].starts_with(".wait") {
        return false;
    }
    let Some(name) = g.name.as_deref() else {
        return false;
    };
    waits
        .iter()
        .any(|w| w.at == at && guards::args_name_guard(&w.args, name))
}

fn missing_reason(file: &crate::workspace::FileInfo, line: usize, what: &str) -> Violation {
    Violation {
        path: file.rel.clone(),
        line,
        rule: "lock-allow",
        msg: format!(
            "exemption for {what} is missing its reason — write \
             analyze: allow(lock, reason = \"...\")"
        ),
    }
}

/// Render `f -> ... -> blocking` through the `next` hop pointers.
fn blocking_chain(ws: &Workspace, next: &[Option<usize>], start: usize) -> String {
    let mut quals = vec![ws.fns[start].qual.clone()];
    let mut cur = start;
    while let Some(t) = next[cur] {
        if t == cur {
            break;
        }
        quals.push(ws.fns[t].qual.clone());
        cur = t;
    }
    if quals.len() == 1 {
        format!("declared blocking: `{}`", quals[0])
    } else {
        format!(
            "reaches `{}` via {}",
            quals[quals.len() - 1],
            quals.join(" -> ")
        )
    }
}

/// One cycle in the acquisition-order graph, as `[a, b, .., a]`, or
/// `None`. White/grey/black DFS, deterministic over the BTreeMap order.
fn find_cycle<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks: BTreeMap<&str, Mark> = adj.keys().map(|&k| (k, Mark::White)).collect();

    fn visit<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for &t in adj.get(node).map(Vec::as_slice).unwrap_or(&[]) {
            match marks.get(t).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let from = stack.iter().position(|&s| s == t).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(t.to_string());
                    return Some(cycle);
                }
                Mark::White => {
                    if let Some(c) = visit(t, adj, marks, stack) {
                        return Some(c);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }

    let keys: Vec<&str> = adj.keys().copied().collect();
    for k in keys {
        if marks.get(k) == Some(&Mark::White) {
            let mut stack = Vec::new();
            if let Some(c) = visit(k, adj, &mut marks, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::config::Config;

    fn analyze_fixture(tag: &str, lib: &str, blocking: &[&str]) -> Vec<String> {
        let dir = std::env::temp_dir().join(format!("xtask-locks-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/demo/src")).expect("fixture dir");
        std::fs::write(
            dir.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\n",
        )
        .expect("manifest");
        std::fs::write(dir.join("crates/demo/src/lib.rs"), lib).expect("lib");
        let ws = crate::workspace::load(&dir).expect("workspace loads");
        std::fs::remove_dir_all(&dir).ok();
        let graph = CallGraph::build(&ws);
        let conf = Config {
            roots: Vec::new(),
            layers: BTreeMap::new(),
            result_crates: Vec::new(),
            alloc_roots: Vec::new(),
            float_roots: Vec::new(),
            bounds_roots: Vec::new(),
            blocking: blocking.iter().map(|s| s.to_string()).collect(),
            path: dir.join("ci/analyze.conf"),
        };
        let cx = Analysis {
            ws: &ws,
            graph: &graph,
            conf: &conf,
            audit_escapes: true,
        };
        let mut out = PassOutput::default();
        LockDiscipline.run(&cx, &mut out);
        out.violations.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn blocking_call_under_guard_is_flagged() {
        let got = analyze_fixture(
            "block",
            "pub struct M;\nimpl M {\n    pub fn lock(&self) -> u32 { 0 }\n}\n\
             pub fn push(x: u32) -> u32 { x }\n\
             pub struct S { m: M }\nimpl S {\n\
                 pub fn bad(&self) {\n        let g = self.m.lock();\n        push(g);\n    }\n\
                 pub fn good(&self) {\n        let g = self.m.lock();\n        drop(g);\n        push(1);\n    }\n}\n",
            &["demo::push"],
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("[lock-blocking]"), "{got:?}");
        assert!(got[0].contains("demo::push"), "{got:?}");
    }

    #[test]
    fn lock_order_cycle_across_two_methods_is_flagged() {
        let got = analyze_fixture(
            "cycle",
            "pub struct M;\nimpl M {\n    pub fn lock(&self) -> u32 { 0 }\n}\n\
             pub struct P { a: M, b: M }\nimpl P {\n\
                 pub fn ab(&self) {\n        let g = self.a.lock();\n        let h = self.b.lock();\n        drop(h);\n        drop(g);\n    }\n\
                 pub fn ba(&self) {\n        let g = self.b.lock();\n        let h = self.a.lock();\n        drop(h);\n        drop(g);\n    }\n}\n",
            &[],
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("[lock-order]"), "{got:?}");
        assert!(got[0].contains("self.a"), "{got:?}");
        assert!(got[0].contains("self.b"), "{got:?}");
    }

    #[test]
    fn transitive_acquire_through_a_call_builds_the_edge() {
        // `outer` holds `a` and calls `inner`, which locks `b`;
        // `other` holds `b` and locks `a` directly — cycle.
        let got = analyze_fixture(
            "transitive",
            "pub struct M;\nimpl M {\n    pub fn lock(&self) -> u32 { 0 }\n}\n\
             pub struct P { a: M, b: M }\nimpl P {\n\
                 pub fn outer(&self) {\n        let g = self.a.lock();\n        self.inner();\n        drop(g);\n    }\n\
                 pub fn inner(&self) {\n        let h = self.b.lock();\n        drop(h);\n    }\n\
                 pub fn other(&self) {\n        let g = self.b.lock();\n        let h = self.a.lock();\n        drop(h);\n        drop(g);\n    }\n}\n",
            &[],
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("[lock-order]"), "{got:?}");
    }

    #[test]
    fn wait_not_in_loop_is_flagged_and_wait_on_own_guard_is_not_blocking() {
        let got = analyze_fixture(
            "wait",
            "pub struct M;\nimpl M {\n    pub fn lock(&self) -> u32 { 0 }\n}\n\
             pub struct C;\nimpl C {\n    pub fn wait(&self, g: &mut u32) {}\n}\n\
             pub struct S { m: M, cv: C }\nimpl S {\n\
                 pub fn once(&self) {\n        let mut g = self.m.lock();\n        self.cv.wait(&mut g);\n    }\n\
                 pub fn looped(&self) {\n        let mut g = self.m.lock();\n        while g == 0 {\n            self.cv.wait(&mut g);\n        }\n    }\n\
                 pub fn relay(&self, g: &mut u32) {\n        self.cv.wait(g);\n    }\n}\n",
            &["demo::C::wait"],
        );
        // `once` holds its own guard, `relay` holds none — the wait-loop
        // rule must fire either way; `looped` re-checks and is clean.
        assert_eq!(got.len(), 2, "{got:?}");
        assert!(
            got.iter().all(|v| v.contains("[lock-wait-loop]")),
            "{got:?}"
        );
        assert!(got.iter().any(|v| v.contains("demo::S::once")), "{got:?}");
        assert!(got.iter().any(|v| v.contains("demo::S::relay")), "{got:?}");
    }

    #[test]
    fn allow_with_reason_silences_and_bare_allow_is_flagged() {
        let got = analyze_fixture(
            "allow",
            "pub struct M;\nimpl M {\n    pub fn lock(&self) -> u32 { 0 }\n}\n\
             pub fn push(x: u32) -> u32 { x }\n\
             pub struct S { m: M }\nimpl S {\n\
                 pub fn a(&self) {\n        let g = self.m.lock();\n\
                 // analyze: allow(lock, reason = \"bounded: queue has reserved capacity\")\n        push(g);\n    }\n\
                 pub fn b(&self) {\n        let g = self.m.lock();\n\
                 // analyze: allow(lock)\n        push(g);\n    }\n}\n",
            &["demo::push"],
        );
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("[lock-allow]"), "{got:?}");
        assert!(got[0].contains("missing its reason"), "{got:?}");
    }
}
