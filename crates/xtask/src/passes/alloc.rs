//! Allocation reachability: keep the kernel hot path off the heap.
//!
//! From the `alloc-root` entries in `ci/analyze.conf` (the
//! back-projection inner sweeps, the ring push/pop, the live-telemetry
//! record path) the pass walks the conservative call graph and
//! token-scans every reachable function body for heap-allocation
//! sources:
//!
//! * allocating constructors and macros — `vec![..]`, `format!(..)`,
//!   `String::from`/`with_capacity`, `Vec`/`VecDeque::with_capacity`,
//!   `Box::new`, `Rc::new`, `Arc::new` (`Vec::new`/`String::new` are
//!   exempt: empty containers do not allocate)
//! * owned-copy adapters — `.to_vec()`, `.to_owned()`, `.to_string()`,
//!   `.into_owned()`, `.collect()` / `.collect::<..>`
//! * growth methods on receivers with owning-container evidence
//!   (`Workspace::owning_idents`): `.push(..)`, `.insert(..)`,
//!   `.extend(..)`, `.reserve(..)`, `.resize(..)`, `.clone()` and
//!   friends — a `.push` on a fixed-size array-backed type stays
//!   silent because the receiver never shows owning evidence
//!
//! Deliberate allocations (constructors the hot loop amortizes, error
//! paths) are exempted with `analyze: allow(alloc, reason = "...")`;
//! the reason is mandatory. Findings carry the shortest root→site call
//! chain, like the panic pass.

use super::{Analysis, Pass, PassOutput};
use crate::callgraph;
use crate::rules::Violation;
use std::collections::BTreeSet;

pub struct AllocReachability;

/// Needles that allocate wherever they appear (word boundary on the
/// left so `my_vec!` or `reformat!` do not match).
const ALLOC_ALWAYS: &[&str] = &[
    "vec!",
    "format!(",
    "String::from(",
    "String::with_capacity(",
    "Vec::with_capacity(",
    "VecDeque::with_capacity(",
    "Box::new(",
    "Rc::new(",
    "Arc::new(",
];

/// Method needles that allocate unconditionally.
const ALLOC_METHODS: &[&str] = &[
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    ".into_owned()",
    ".collect()",
    ".collect::<",
];

/// Growth methods that allocate when the receiver is an owning
/// container (amortized or not — the hot path must not grow anything).
const GROWTH_METHODS: &[&str] = &[
    ".push(",
    ".push_back(",
    ".push_front(",
    ".insert(",
    ".extend(",
    ".extend_from_slice(",
    ".reserve(",
    ".resize(",
    ".append(",
    ".clone()",
];

impl Pass for AllocReachability {
    fn name(&self) -> &'static str {
        "alloc-reachable"
    }

    fn run(&self, cx: &Analysis<'_>, out: &mut PassOutput) {
        let ws = cx.ws;
        let roots: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                !f.is_test
                    && !f.cfg_off
                    && cx
                        .conf
                        .alloc_roots
                        .iter()
                        .any(|r| f.qual == *r || f.qual.starts_with(&format!("{r}::")))
            })
            .map(|(i, _)| i)
            .collect();
        let pred = cx.graph.reach(&roots);

        for &fi in pred.keys() {
            let f = &ws.fns[fi];
            let Some((b0, b1)) = f.body else { continue };
            let file = &ws.files[f.file];
            let masked = &file.lexed.masked;
            for (at, what) in scan_allocs(masked, b0, b1, &ws.owning_idents) {
                let line = callgraph::line_of(masked, at);
                if file.test_lines.get(line).copied().unwrap_or(false) {
                    continue;
                }
                match file.lexed.analyze_allowed(line, "alloc") {
                    Some(a) => {
                        out.used(&file.rel, a.line, "alloc");
                        if a.reason.is_some() {
                            continue;
                        }
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "alloc-allow",
                            msg: format!(
                                "exemption for {what} is missing its reason — write \
                                 analyze: allow(alloc, reason = \"...\")"
                            ),
                        });
                    }
                    None => {
                        let chain = callgraph::chain(ws, &pred, fi);
                        out.violations.push(Violation {
                            path: file.rel.clone(),
                            line,
                            rule: "alloc-reachable",
                            msg: format!("{what} in `{}` ({})", f.qual, render_chain(&chain)),
                        });
                    }
                }
            }
        }
    }
}

fn render_chain(chain: &[String]) -> String {
    if chain.len() <= 1 {
        return "a declared alloc-root".to_string();
    }
    let shown: Vec<&str> = if chain.len() > 5 {
        let mut v: Vec<&str> = chain[..2].iter().map(String::as_str).collect();
        v.push("...");
        v.push(chain[chain.len() - 1].as_str());
        v
    } else {
        chain.iter().map(String::as_str).collect()
    };
    format!("via {}", shown.join(" -> "))
}

/// Token-scan one body span for allocation sources. Returns
/// (offset, label), sorted by offset.
pub fn scan_allocs(
    masked: &str,
    b0: usize,
    b1: usize,
    owning_idents: &BTreeSet<String>,
) -> Vec<(usize, String)> {
    let b = masked.as_bytes();
    let end = b1.min(b.len());
    let body = &masked[b0..end];
    let mut out = Vec::new();

    for needle in ALLOC_ALWAYS {
        let mut from = 0usize;
        while let Some(p) = body[from..].find(needle) {
            let at = b0 + from + p;
            from += p + needle.len();
            // Word boundary: also reject a preceding `.` so a method
            // named like a constructor does not match.
            if at > 0
                && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_' || b[at - 1] == b'.')
            {
                continue;
            }
            out.push((at, format!("allocation `{}`", needle.trim_end_matches('('))));
        }
    }

    for needle in ALLOC_METHODS {
        let mut from = 0usize;
        while let Some(p) = body[from..].find(needle) {
            let at = b0 + from + p;
            from += p + needle.len();
            out.push((
                at,
                format!(
                    "allocating call `{}`",
                    needle.trim_end_matches([':', '<', '('])
                ),
            ));
        }
    }

    for needle in GROWTH_METHODS {
        let mut from = 0usize;
        while let Some(p) = body[from..].find(needle) {
            let at = b0 + from + p;
            from += p + needle.len();
            let recv = receiver_last_ident(masked, b0, at);
            if owning_idents.contains(&recv) {
                out.push((
                    at,
                    format!(
                        "growth call `{}` on owning container `{recv}`",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
    }

    out.sort();
    out
}

/// Last identifier of the receiver expression before the `.` at `at`
/// (`self.shared.queue` → `queue`); empty when the receiver is not a
/// plain place expression.
fn receiver_last_ident(masked: &str, b0: usize, at: usize) -> String {
    let b = masked.as_bytes();
    let mut j = at;
    while j > b0 && b[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let e = j;
    while j > b0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
        j -= 1;
    }
    masked[j..e].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<String> {
        let lx = crate::lexer::lex(src);
        let mut owning = BTreeSet::new();
        owning.insert("queue".to_string());
        owning.insert("names".to_string());
        scan_allocs(&lx.masked, 0, lx.masked.len(), &owning)
            .into_iter()
            .map(|(_, w)| w)
            .collect()
    }

    #[test]
    fn constructors_and_macros_are_flagged() {
        let got = scan(
            "fn f() { let a = vec![0.0; 8]; let b = Vec::with_capacity(4); \
             let c = Box::new(1); let d = format!(\"x\"); }",
        );
        assert_eq!(got.len(), 4, "{got:?}");
    }

    #[test]
    fn empty_container_constructors_are_exempt() {
        let got = scan("fn f() { let a: Vec<u32> = Vec::new(); let s = String::new(); }");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn owned_copy_adapters_are_flagged() {
        let got = scan(
            "fn f(s: &[u8]) { let a = s.to_vec(); let b: Vec<u8> = s.iter().copied().collect(); }",
        );
        assert_eq!(got.len(), 2, "{got:?}");
        let got2 = scan("fn f(s: &[u8]) { let b = s.iter().copied().collect::<Vec<u8>>(); }");
        assert_eq!(got2.len(), 1, "{got2:?}");
    }

    #[test]
    fn growth_gated_on_owning_receiver_evidence() {
        let got = scan("fn f(&mut self, x: u64) { self.queue.push(x); self.lanes.push(x); }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("queue"), "{got:?}");
    }

    #[test]
    fn clone_on_owning_container_only() {
        let got = scan("fn f(&self) { let a = self.names.clone(); let b = self.mask.clone(); }");
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].contains("names"), "{got:?}");
    }

    #[test]
    fn word_boundaries_respected() {
        let got = scan("fn f() { my_vec![1]; reformat!(x); }");
        assert!(got.is_empty(), "{got:?}");
    }
}
