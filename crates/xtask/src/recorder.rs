//! `--record <path>`: append the analyzer's own wall time to the perf
//! trajectory.
//!
//! The analyzer is on the CI critical path, so its cost is a tracked
//! metric like any kernel: each run appends one `ifdk-run/v1` JSONL
//! record (the `ct-perfdb` schema) with per-pass wall-milliseconds and
//! totals, keyed by the same machine fingerprint the benchmark
//! trajectory uses. xtask is a standalone zero-dependency workspace, so
//! this is a byte-compatible replica of `ct_perfdb::{machine,record}`
//! serialization rather than an import — the fingerprint definition and
//! field order are part of the cross-tool contract and are locked by
//! tests on both sides.

use crate::jsonout::str_lit;
use crate::passes::PassReport;
use std::fmt::Write as _;
use std::path::Path;

pub const RUN_SCHEMA: &str = "ifdk-run/v1";

/// SIMD-relevant ISA flags, in `ct_perfdb::MachineInfo` order.
const INTERESTING_FLAGS: [&str; 8] = [
    "sse4_1", "sse4_2", "avx", "avx2", "fma", "avx512f", "avx512vl", "neon",
];

pub struct Machine {
    pub cpu_model: String,
    pub cpu_flags: Vec<String>,
    pub logical_cpus: usize,
}

impl Machine {
    pub fn detect() -> Self {
        let logical_cpus = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1);
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let field = |name: &str| -> Option<String> {
            cpuinfo.lines().find_map(|l| {
                let (k, v) = l.split_once(':')?;
                (k.trim() == name).then(|| v.trim().to_string())
            })
        };
        let cpu_model = field("model name")
            .or_else(|| field("Processor"))
            .unwrap_or_else(|| "unknown".to_string());
        let cpu_flags = field("flags")
            .or_else(|| field("Features"))
            .map(|f| {
                let have: Vec<&str> = f.split_whitespace().collect();
                INTERESTING_FLAGS
                    .iter()
                    .filter(|want| have.contains(want))
                    .map(|s| s.to_string())
                    .collect()
            })
            .unwrap_or_default();
        Self {
            cpu_model,
            cpu_flags,
            logical_cpus,
        }
    }

    /// FNV-1a fingerprint, byte-identical to
    /// `ct_perfdb::MachineInfo::fingerprint`.
    pub fn fingerprint(&self) -> String {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.cpu_model.as_bytes());
        eat(&[0x1f]);
        let mut flags: Vec<&str> = self.cpu_flags.iter().map(String::as_str).collect();
        flags.sort_unstable();
        for f in flags {
            eat(f.as_bytes());
            eat(&[0x1e]);
        }
        eat(&[0x1f]);
        eat(&self.logical_cpus.to_le_bytes());
        format!("{h:016x}")
    }
}

/// JSON number with `ct_obs::jsonw::num_f64` semantics (non-finite
/// clamps to 0).
fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// One `ifdk-run/v1` line for this analyzer run: per-pass wall time as
/// `pass.<name>.wall_ms`, total wall time and total findings. Metric
/// names are pre-sorted to match the BTreeMap order `ct-perfdb` writes.
pub fn run_record(machine: &Machine, t_unix_ms: u64, reports: &[PassReport]) -> String {
    let mut metrics: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (format!("pass.{}.wall_ms", r.name), r.wall_ms))
        .collect();
    metrics.push((
        "analyze.findings".to_string(),
        reports.iter().map(|r| r.findings as f64).sum(),
    ));
    metrics.push((
        "analyze.total_wall_ms".to_string(),
        reports.iter().map(|r| r.wall_ms).sum(),
    ));
    metrics.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    let _ = write!(
        out,
        "{{{}:{},{}:{},{}:{},{}:{}",
        str_lit("schema"),
        str_lit(RUN_SCHEMA),
        str_lit("source"),
        str_lit("xtask-analyze"),
        str_lit("t_unix_ms"),
        t_unix_ms,
        str_lit("fingerprint"),
        str_lit(&machine.fingerprint()),
    );
    let _ = write!(
        out,
        ",{}:{{{}:{},{}:[",
        str_lit("machine"),
        str_lit("cpu_model"),
        str_lit(&machine.cpu_model),
        str_lit("cpu_flags"),
    );
    for (i, f) in machine.cpu_flags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&str_lit(f));
    }
    let _ = write!(
        out,
        "],{}:{}}}",
        str_lit("logical_cpus"),
        machine.logical_cpus,
    );
    // The config section carries the analyzer's shape in the fields the
    // schema has: `threads` = worker count (one per pass).
    let _ = write!(
        out,
        ",{}:{{{}:{},{}:{},{}:{},{}:0,{}:0,{}:{},{}:{}}}",
        str_lit("config"),
        str_lit("kernel"),
        str_lit("analyze"),
        str_lit("layout"),
        str_lit(""),
        str_lit("threads"),
        reports.len(),
        str_lit("grid_rows"),
        str_lit("grid_cols"),
        str_lit("tile"),
        str_lit(""),
        str_lit("problem"),
        str_lit(""),
    );
    let _ = write!(out, ",{}:[", str_lit("metrics"));
    for (i, (name, value)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{{}:{},{}:{}}}",
            str_lit("name"),
            str_lit(name),
            str_lit("value"),
            num_f64(*value),
        );
    }
    out.push_str("]}");
    out
}

/// Append one record line to `path`, creating the file if needed.
pub fn append(path: &Path, reports: &[PassReport]) -> Result<(), String> {
    let machine = Machine::detect();
    // Provenance timestamp; xtask is standalone and cannot use ct_obs.
    // lint: allow(raw-clock)
    let t_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let line = run_record(&machine, t_unix_ms, reports);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(f, "{line}").map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_matches_the_perfdb_definition() {
        // Locked against ct_perfdb::MachineInfo::fingerprint for the
        // same inputs — both sides test the shared contract.
        let m = Machine {
            cpu_model: "Example CPU".into(),
            cpu_flags: vec!["avx2".into(), "fma".into()],
            logical_cpus: 8,
        };
        let reordered = Machine {
            cpu_model: "Example CPU".into(),
            cpu_flags: vec!["fma".into(), "avx2".into()],
            logical_cpus: 8,
        };
        assert_eq!(m.fingerprint(), reordered.fingerprint());
        assert_eq!(m.fingerprint().len(), 16);
        let other = Machine {
            cpu_model: "Other CPU".into(),
            cpu_flags: vec!["avx2".into(), "fma".into()],
            logical_cpus: 8,
        };
        assert_ne!(m.fingerprint(), other.fingerprint());
    }

    #[test]
    fn record_has_schema_source_and_sorted_metrics() {
        let m = Machine {
            cpu_model: "Example CPU".into(),
            cpu_flags: vec!["avx2".into()],
            logical_cpus: 4,
        };
        let reports = vec![
            PassReport {
                name: "panic-reachable",
                findings: 2,
                wall_ms: 1.5,
                stats: Vec::new(),
            },
            PassReport {
                name: "index-bounds",
                findings: 0,
                wall_ms: 2.25,
                stats: Vec::new(),
            },
        ];
        let line = run_record(&m, 123, &reports);
        assert!(line.starts_with("{\"schema\":\"ifdk-run/v1\""), "{line}");
        assert!(line.contains("\"source\":\"xtask-analyze\""), "{line}");
        assert!(line.contains("\"t_unix_ms\":123"), "{line}");
        assert!(
            line.contains("{\"name\":\"pass.index-bounds.wall_ms\",\"value\":2.25}"),
            "{line}"
        );
        assert!(
            line.contains("\"analyze.findings\"") && line.contains("\"value\":2"),
            "{line}"
        );
        // Metrics are name-sorted: analyze.* precede pass.*.
        let a = line.find("analyze.total_wall_ms").expect("total present");
        let p = line.find("pass.panic-reachable").expect("pass present");
        assert!(a < p, "{line}");
        // Fingerprint field matches the machine.
        assert!(line.contains(&m.fingerprint()), "{line}");
    }

    #[test]
    fn append_creates_and_appends_jsonl() {
        let dir = std::env::temp_dir().join("xtask-recorder-fixture");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("perf/analyze.jsonl");
        let reports = vec![PassReport {
            name: "layering",
            findings: 0,
            wall_ms: 0.5,
            stats: Vec::new(),
        }];
        append(&path, &reports).expect("first append");
        append(&path, &reports).expect("second append");
        let text = std::fs::read_to_string(&path).expect("file exists");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        for l in lines {
            assert!(l.starts_with("{\"schema\":\"ifdk-run/v1\""), "{l}");
            assert!(l.ends_with('}'), "{l}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
