//! The lint rules behind `cargo xtask lint`.
//!
//! Every rule reports `path:line: [rule-id] message` and can be
//! suppressed for one site with a `// lint: allow(rule-id)` comment on
//! the same line or the line above. The rules are:
//!
//! | id             | requirement |
//! |----------------|-------------|
//! | forbid-unsafe  | every lib crate starts with `#![forbid(unsafe_code)]` |
//! | bench-exit     | no bare `std::process::exit` — return `ExitCode` / `ifdk_bench::check::Gate` |
//! | obs-names      | observability span/counter names are lowercase dotted literals |
//! | raw-clock      | no `Instant::now()` / `SystemTime` outside ct-obs and the bench harness |
//! | no-unwrap      | no `.unwrap()` in library non-test code — use `.expect("why")` |

use crate::lexer::Lexed;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation, printed as `path:line: [rule] message`.
pub struct Violation {
    pub path: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Directories whose files may read the raw clock: the clock facade
/// itself and the benchmark harness (which measures wall time by design).
const RAW_CLOCK_ALLOWED: &[&str] = &["crates/ct-obs/src", "crates/bench/src"];

/// Observability emission functions whose first argument names a span,
/// counter, gauge or histogram.
const OBS_EMITTERS: &[&str] = &[
    "span",
    "time",
    "counter_add",
    "gauge_max",
    "observe_ns",
    "with_wait_spans",
];

/// Drop candidates suppressed by a `// lint: allow(rule)` escape on
/// the same line or the line above. The checks emit unfiltered
/// candidates so `xtask analyze` can audit which lint escapes still
/// suppress anything (`stale-allow`).
pub fn filter_allowed(lx: &Lexed, candidates: Vec<Violation>) -> Vec<Violation> {
    candidates
        .into_iter()
        .filter(|v| !lx.allowed(v.line, v.rule))
        .collect()
}

/// Check a lib crate root for the `#![forbid(unsafe_code)]` attribute.
pub fn check_forbid_unsafe(rel: &Path, lx: &Lexed, out: &mut Vec<Violation>) {
    let compact: String = lx.masked.chars().filter(|c| !c.is_whitespace()).collect();
    if !compact.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            path: rel.to_path_buf(),
            line: 1,
            rule: "forbid-unsafe",
            msg: "lib crate must declare #![forbid(unsafe_code)]".into(),
        });
    }
}

/// Forbid bare `process::exit` anywhere; exits must flow through
/// `std::process::ExitCode` or the `ifdk_bench::check::Gate` contract so
/// CI can tell failure classes apart.
pub fn check_bench_exit(rel: &Path, lx: &Lexed, out: &mut Vec<Violation>) {
    for (idx, text) in lx.masked.lines().enumerate() {
        let line = idx + 1;
        if text.contains("process::exit(") {
            out.push(Violation {
                path: rel.to_path_buf(),
                line,
                rule: "bench-exit",
                msg: "bare process::exit bypasses the 0/1/2/3 gate contract; \
                      return ExitCode (see ifdk_bench::check)"
                    .into(),
            });
        }
    }
}

/// Span/counter names passed to obs emitters must be lowercase dotted
/// literals (`bp.tile`, `ring.push_stalls`) so traces stay greppable.
pub fn check_obs_names(rel: &Path, lx: &Lexed, out: &mut Vec<Violation>) {
    let b = lx.masked.as_bytes();
    for lit in &lx.strings {
        // Look backwards from the literal for `ident(`.
        let mut j = lit.start;
        while j > 0 && (b[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        if j == 0 || b[j - 1] != b'(' {
            continue;
        }
        j -= 1;
        while j > 0 && (b[j - 1] as char).is_whitespace() {
            j -= 1;
        }
        let end = j;
        while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
            j -= 1;
        }
        let ident = &lx.masked[j..end];
        if !OBS_EMITTERS.contains(&ident) {
            continue;
        }
        let ok = !lit.text.is_empty()
            && lit
                .text
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_');
        if !ok {
            out.push(Violation {
                path: rel.to_path_buf(),
                line: lit.line,
                rule: "obs-names",
                msg: format!(
                    "obs name {:?} passed to {ident}() must be a lowercase dotted literal",
                    lit.text
                ),
            });
        }
    }
}

/// Raw clock reads are confined to ct-obs (the facade) and the bench
/// harness; everything else must go through `ct_obs::clock`.
pub fn check_raw_clock(rel: &Path, lx: &Lexed, out: &mut Vec<Violation>) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    if RAW_CLOCK_ALLOWED.iter().any(|d| rel_str.starts_with(d)) {
        return;
    }
    for (idx, text) in lx.masked.lines().enumerate() {
        let line = idx + 1;
        for needle in ["Instant::now", "SystemTime"] {
            if text.contains(needle) {
                out.push(Violation {
                    path: rel.to_path_buf(),
                    line,
                    rule: "raw-clock",
                    msg: format!("{needle} outside ct-obs/bench; use ct_obs::clock"),
                });
            }
        }
    }
}

/// `.unwrap()` is banned in library non-test code; `.expect("why")`
/// documents the invariant and is sanctioned.
pub fn check_no_unwrap(rel: &Path, lx: &Lexed, tests: &[bool], out: &mut Vec<Violation>) {
    for (idx, text) in lx.masked.lines().enumerate() {
        let line = idx + 1;
        if tests.get(line).copied().unwrap_or(false) {
            continue;
        }
        if text.contains(".unwrap()") {
            out.push(Violation {
                path: rel.to_path_buf(),
                line,
                rule: "no-unwrap",
                msg: "no .unwrap() in library code; use .expect(\"why\") or propagate".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_lines};

    fn run_all(rel: &str, src: &str) -> Vec<String> {
        let lx = lex(src);
        let tl = test_lines(&lx.masked);
        let rel = Path::new(rel);
        let mut out = Vec::new();
        check_bench_exit(rel, &lx, &mut out);
        check_obs_names(rel, &lx, &mut out);
        check_raw_clock(rel, &lx, &mut out);
        check_no_unwrap(rel, &lx, &tl, &mut out);
        let out = filter_allowed(&lx, out);
        out.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn clean_file_produces_no_findings() {
        let found = run_all(
            "crates/x/src/lib.rs",
            "fn f() -> u32 { t.span(\"bp.tile\"); opt.expect(\"set above\") }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unwrap_flagged_with_file_and_line() {
        let found = run_all("crates/x/src/lib.rs", "fn f() {\n    o.unwrap();\n}\n");
        assert_eq!(found.len(), 1);
        assert!(found[0].starts_with("crates/x/src/lib.rs:2: [no-unwrap]"));
    }

    #[test]
    fn unwrap_in_tests_and_comments_and_strings_is_fine() {
        let src = "// .unwrap() is discussed here\n\
                   fn f() { let s = \".unwrap()\"; }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { o.unwrap(); }\n}\n";
        assert!(run_all("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_escape_suppresses_one_site() {
        let src = "fn f() {\n    // lint: allow(no-unwrap)\n    o.unwrap();\n    p.unwrap();\n}\n";
        let found = run_all("crates/x/src/lib.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains(":4:"));
    }

    #[test]
    fn bare_exit_flagged_exitcode_fine() {
        let found = run_all(
            "crates/bench/src/bin/gups.rs",
            "fn main() { std::process::exit(1); }\n",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("[bench-exit]"));
        assert!(run_all(
            "crates/bench/src/bin/gups.rs",
            "fn main() -> std::process::ExitCode { std::process::ExitCode::SUCCESS }\n"
        )
        .is_empty());
    }

    #[test]
    fn obs_names_must_be_lowercase_dotted() {
        let bad = run_all("crates/x/src/lib.rs", "fn f() { t.span(\"BP Tile\"); }\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("[obs-names]"));
        let good = run_all(
            "crates/x/src/lib.rs",
            "fn f() { t.counter_add(\"ring.push_stalls\", 1); }\n",
        );
        assert!(good.is_empty());
        // Unrelated literals are not name-checked.
        let other = run_all(
            "crates/x/src/lib.rs",
            "fn f() { println!(\"Hello World\"); }\n",
        );
        assert!(other.is_empty());
    }

    #[test]
    fn raw_clock_confined_to_allowlist() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(run_all("crates/ifdk/src/lib.rs", src).len(), 1);
        assert!(run_all("crates/ct-obs/src/clock.rs", src).is_empty());
        assert!(run_all("crates/bench/src/gups.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_the_attribute() {
        let lx = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut out = Vec::new();
        check_forbid_unsafe(Path::new("crates/x/src/lib.rs"), &lx, &mut out);
        assert!(out.is_empty());
        let lx2 = lex("pub fn f() {}\n");
        let mut out2 = Vec::new();
        check_forbid_unsafe(Path::new("crates/x/src/lib.rs"), &lx2, &mut out2);
        assert_eq!(out2.len(), 1);
        assert!(out2[0].to_string().contains("[forbid-unsafe]"));
    }
}
