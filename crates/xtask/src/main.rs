//! `cargo xtask` — repo-local verification tasks.
//!
//! Two subcommands:
//!
//! * `lint` — a token-level pass over every Rust source file in the
//!   workspace (plus the standalone `ct-sync` and `xtask` crates)
//!   enforcing the project conventions rustc and clippy cannot see.
//!   See [`rules`] for the rule table.
//! * `analyze` — the static analyzer: a recursive-descent item parser
//!   ([`parser`]) over the masking lexer, a conservative workspace call
//!   graph ([`callgraph`]), a per-function control-flow graph ([`cfg`])
//!   with a forward fixpoint solver ([`dataflow`]), and seven passes
//!   ([`passes`]): panic-reachability from the back-projection hot-path
//!   roots, crate-layering DAG checks, hash-order determinism lints,
//!   lock-discipline (order cycles, blocking under a guard, condvar
//!   waits without a re-check loop) over the guard scopes extracted by
//!   [`guards`], allocation-reachability from the `alloc-root` entries,
//!   float-determinism (order-sensitive reductions, ungated FMA) from
//!   the `float-root` entries, and index-bounds interval analysis from
//!   the `bounds-root` entries. After the passes run, every
//!   `analyze: allow(..)` / `lint: allow(..)` escape that no longer
//!   suppresses a finding is reported as `stale-allow`. Roots, blocking
//!   prefixes and the declared layering live in `ci/analyze.conf`;
//!   `--roots a,b` overrides the roots for ad-hoc queries, `--dir
//!   <path>` analyzes another tree (used by CI to assert the
//!   negative-control fixtures still fail), `--format json` emits the
//!   `ifdk-analyze/v2` findings document for CI artifacts, and
//!   `--record <path>` appends per-pass wall time to an `ifdk-run/v1`
//!   JSONL trajectory.
//!
//! Exit codes follow the repo's gate contract for both subcommands:
//! 0 = clean, 1 = violations found, 3 = usage / internal error.

#![forbid(unsafe_code)]

mod callgraph;
mod cfg;
mod config;
mod dataflow;
mod guards;
mod jsonout;
mod lexer;
mod parser;
mod passes;
mod recorder;
mod rules;
mod workspace;

use rules::Violation;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask <lint | analyze [--roots <qual,..>] [--dir <path>] \
     [--format <text|json>] [--record <path>]>";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.len() == 1 => report("lint", lint(&repo_root())),
        Some("analyze") => match parse_analyze_args(&args[1..]) {
            Ok(opts) => {
                let root = opts.dir.unwrap_or_else(repo_root);
                let result = analyze(&root, opts.roots.as_deref());
                if let (Ok(rep), Some(path)) = (&result, &opts.record) {
                    if let Err(e) = recorder::append(path, &rep.passes) {
                        eprintln!("xtask analyze: --record: {e}");
                        return ExitCode::from(3);
                    }
                }
                match opts.format {
                    Format::Text => report("analyze", result.map(|r| r.violations)),
                    Format::Json => report_json("analyze", result),
                }
            }
            Err(e) => {
                eprintln!("xtask analyze: {e}");
                eprintln!("{USAGE}");
                ExitCode::from(3)
            }
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(3)
        }
    }
}

/// Shared 0/1/3 reporting for both subcommands.
fn report(what: &str, result: Result<Vec<Violation>, String>) -> ExitCode {
    match result {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask {what}: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("xtask {what}: {} violation(s)", violations.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask {what}: {e}");
            ExitCode::from(3)
        }
    }
}

/// `--format json`: one `ifdk-analyze/v2` object on stdout, same exit
/// codes as the text reporter (CI archives the document as an artifact
/// while the exit code still gates the job).
fn report_json(what: &str, result: Result<passes::AnalyzeReport, String>) -> ExitCode {
    match result {
        Ok(report) => {
            print!("{}", jsonout::findings_doc(what, &report));
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            print!("{}", jsonout::error_doc(&e));
            ExitCode::from(3)
        }
    }
}

struct AnalyzeArgs {
    dir: Option<PathBuf>,
    roots: Option<Vec<String>>,
    format: Format,
    record: Option<PathBuf>,
}

fn parse_analyze_args(args: &[String]) -> Result<AnalyzeArgs, String> {
    let mut opts = AnalyzeArgs {
        dir: None,
        roots: None,
        format: Format::Text,
        record: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--roots" => {
                let v = it.next().ok_or("--roots needs a value")?;
                opts.roots = Some(v.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--dir" => {
                opts.dir = Some(PathBuf::from(it.next().ok_or("--dir needs a value")?));
            }
            "--record" => {
                opts.record = Some(PathBuf::from(it.next().ok_or("--record needs a value")?));
            }
            "--format" => {
                opts.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some(other) => return Err(format!("unknown format {other:?}")),
                    None => return Err("--format needs a value".to_string()),
                };
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Run the static analyzer over the tree at `root`.
fn analyze(
    root: &Path,
    roots_override: Option<&[String]>,
) -> Result<passes::AnalyzeReport, String> {
    let mut conf = config::Config::load(root)?;
    if let Some(roots) = roots_override {
        conf.roots = roots.to_vec();
    }
    let ws = workspace::load(root)?;
    let graph = callgraph::CallGraph::build(&ws);
    let cx = passes::Analysis {
        ws: &ws,
        graph: &graph,
        conf: &conf,
        // Narrowed ad-hoc reachability must not make honest escapes
        // look dead.
        audit_escapes: roots_override.is_none(),
    };
    let mut report = passes::run_all(&cx);
    if cx.audit_escapes {
        audit_lint_escapes(root, &mut report.violations)?;
        report
            .violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }
    Ok(report)
}

/// The lint half of the stale-escape audit: re-derive the unfiltered
/// lint candidates for every linted file and report `lint: allow(..)`
/// directives that no candidate matches — a dead escape is a standing
/// exemption waiting for a future defect to hide under.
fn audit_lint_escapes(root: &Path, out: &mut Vec<Violation>) -> Result<(), String> {
    for (rel, lx, candidates) in lint_candidates(root)? {
        for (l, rule) in &lx.allows {
            let used = candidates
                .iter()
                .any(|v| v.rule == rule && (v.line == *l || v.line == *l + 1));
            if !used {
                out.push(Violation {
                    path: rel.clone(),
                    line: *l,
                    rule: "stale-allow",
                    msg: format!("escape `lint: allow({rule})` suppresses nothing — remove it"),
                });
            }
        }
    }
    Ok(())
}

/// The repo root is two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

/// Run every rule over the repo; returns violations sorted by location.
fn lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for (_, lx, candidates) in lint_candidates(root)? {
        out.extend(rules::filter_allowed(&lx, candidates));
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

/// Unfiltered lint candidates per file — shared by `lint` (which drops
/// the `lint: allow`-suppressed ones) and the analyzer's stale-escape
/// audit (which needs to know what each directive suppresses).
fn lint_candidates(root: &Path) -> Result<Vec<(PathBuf, lexer::Lexed, Vec<Violation>)>, String> {
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path.as_path())
            .to_path_buf();
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let lx = lexer::lex(&src);
        let test_flags = lexer::test_lines(&lx.masked);

        let mut candidates = Vec::new();
        if is_lib_root(&rel) {
            rules::check_forbid_unsafe(&rel, &lx, &mut candidates);
        }
        rules::check_bench_exit(&rel, &lx, &mut candidates);
        rules::check_obs_names(&rel, &lx, &mut candidates);
        rules::check_raw_clock(&rel, &lx, &mut candidates);
        if in_library_scope(&rel) {
            rules::check_no_unwrap(&rel, &lx, &test_flags, &mut candidates);
        }
        out.push((rel, lx, candidates));
    }
    Ok(out)
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every lib
/// target in the repo (`src/lib.rs` under crates/, plus the examples
/// and integration-test helper libs).
fn is_lib_root(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    (s.starts_with("crates/") && s.ends_with("/src/lib.rs"))
        || s == "examples/lib.rs"
        || s == "tests/src/lib.rs"
}

/// Library code for the no-unwrap rule: crate sources under crates/,
/// excluding bin targets (bench regenerators, xtask itself) — binaries
/// may panic on broken invariants at top level, libraries must not.
fn in_library_scope(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/") && s.contains("/src/") && !s.contains("/src/bin/")
}

/// Recursively collect `.rs` files, skipping build output and analyzer
/// fixtures (which deliberately seed violations).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_as_documented() {
        assert!(is_lib_root(Path::new("crates/ifdk/src/lib.rs")));
        assert!(is_lib_root(Path::new("examples/lib.rs")));
        assert!(!is_lib_root(Path::new("crates/bench/src/bin/gups.rs")));
        assert!(in_library_scope(Path::new("crates/ifdk/src/ring.rs")));
        assert!(!in_library_scope(Path::new("crates/bench/src/bin/gups.rs")));
        assert!(!in_library_scope(Path::new("examples/quickstart.rs")));
        assert!(!in_library_scope(Path::new(
            "tests/integration/end_to_end.rs"
        )));
    }

    #[test]
    fn lint_flags_a_seeded_fixture_tree() {
        let dir = std::env::temp_dir().join("xtask-lint-fixture");
        let src_dir = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src_dir).expect("create fixture tree");
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
        )
        .expect("write fixture");
        let found = lint(&dir).expect("lint runs");
        let rendered: Vec<String> = found.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered
                .iter()
                .any(|v| v.starts_with("crates/demo/src/lib.rs:1: [forbid-unsafe]")),
            "{rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.starts_with("crates/demo/src/lib.rs:2: [no-unwrap]")),
            "{rendered:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn negative_fixture() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/negative")
    }

    #[test]
    fn negative_control_fixture_trips_every_pass() {
        let found = analyze(&negative_fixture(), None).expect("analyze runs");
        let rendered: Vec<String> = found.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[panic-reachable]") && v.contains("demo_a::util::first")),
            "seeded unwrap not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[layering]") && v.contains("cycle")),
            "seeded layering cycle not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[determinism]") && v.contains("counts")),
            "seeded hash-order export not caught: {rendered:?}"
        );
        assert!(
            rendered.iter().any(|v| v.contains("[lock-order]")
                && v.contains("demo_d::Pair::self.a")
                && v.contains("demo_d::Pair::self.b")),
            "seeded ab/ba lock-order cycle not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[lock-blocking]") && v.contains("demo_d::ring::push")),
            "seeded blocking-under-guard not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[lock-wait-loop]") && v.contains("demo_d::Pair::wait_once")),
            "seeded wait-outside-loop not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[alloc-reachable]") && v.contains("demo_e::scratch::copy_out")),
            "seeded reachable allocation not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[float-order]") && v.contains("demo_f::merge::total")),
            "seeded hash-order float reduction not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[float-fma]") && v.contains("demo_f::kernel::blend")),
            "seeded ungated mul_add not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[index-bounds]") && v.contains("demo_g::kernel::shifted_sum")),
            "seeded off-by-one hot-loop index not caught: {rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.contains("[stale-allow]") && v.contains("demo-f")),
            "seeded stale escape not caught: {rendered:?}"
        );
    }

    #[test]
    fn negative_control_reports_pass_stats_and_gathers() {
        let report = analyze(&negative_fixture(), None).expect("analyze runs");
        assert_eq!(report.passes.len(), 7, "seven passes must report");
        let bounds = report
            .passes
            .iter()
            .find(|p| p.name == "index-bounds")
            .expect("index-bounds pass reports");
        assert!(
            bounds
                .stats
                .iter()
                .any(|(n, v)| n == "cfg_blocks" && *v > 0),
            "{:?}",
            bounds.stats
        );
        // demo-g's proven `.get` gather feeds the elidable report.
        assert!(
            report
                .gathers
                .iter()
                .any(|g| g.qual.starts_with("demo_g::") && g.what.contains(".get(")),
            "proven checked gather missing from the report"
        );
    }

    #[test]
    fn roots_override_narrows_the_panic_pass() {
        // Pointing the roots at demo-b (which never panics) silences
        // the reachability finding; the seeded layering and determinism
        // defects still fire, so the tree stays red either way.
        let roots = vec!["demo_b".to_string()];
        let found = analyze(&negative_fixture(), Some(&roots)).expect("analyze runs");
        let rendered: Vec<String> = found.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            !rendered.iter().any(|v| v.contains("[panic-reachable]")),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().any(|v| v.contains("[layering]")),
            "{rendered:?}"
        );
    }

    #[test]
    fn self_hosting_lint_and_analyze_are_clean() {
        // xtask is part of the workspace it checks: both subcommands
        // must pass over the repo, exemptions carrying reasons.
        let root = repo_root();
        let lint_found: Vec<String> = lint(&root)
            .expect("lint runs")
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(lint_found.is_empty(), "{lint_found:?}");
        let analyze_found: Vec<String> = analyze(&root, None)
            .expect("analyze runs")
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert!(analyze_found.is_empty(), "{analyze_found:?}");
    }
}
