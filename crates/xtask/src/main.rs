//! `cargo xtask` — repo-local verification tasks.
//!
//! The only subcommand today is `lint`, a token-level pass over every
//! Rust source file in the workspace (plus the standalone `ct-sync` and
//! `xtask` crates) enforcing the project conventions that rustc and
//! clippy cannot see. See [`rules`] for the rule table. Exit codes
//! follow the repo's gate contract: 0 = clean, 1 = violations found,
//! 3 = usage / internal error.

#![forbid(unsafe_code)]

mod lexer;
mod rules;

use rules::Violation;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match lint(&repo_root()) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("xtask lint: clean");
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                eprintln!("xtask lint: {} violation(s)", violations.len());
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::from(3)
            }
        },
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(3)
        }
    }
}

/// The repo root is two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

/// Run every rule over the repo; returns violations sorted by location.
fn lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut files)?;
    }
    files.sort();

    let mut out = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path.as_path())
            .to_path_buf();
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let lx = lexer::lex(&src);
        let test_flags = lexer::test_lines(&lx.masked);

        if is_lib_root(&rel) {
            rules::check_forbid_unsafe(&rel, &lx, &mut out);
        }
        rules::check_bench_exit(&rel, &lx, &mut out);
        rules::check_obs_names(&rel, &lx, &mut out);
        rules::check_raw_clock(&rel, &lx, &mut out);
        if in_library_scope(&rel) {
            rules::check_no_unwrap(&rel, &lx, &test_flags, &mut out);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: every lib
/// target in the repo (`src/lib.rs` under crates/, plus the examples
/// and integration-test helper libs).
fn is_lib_root(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    (s.starts_with("crates/") && s.ends_with("/src/lib.rs"))
        || s == "examples/lib.rs"
        || s == "tests/src/lib.rs"
}

/// Library code for the no-unwrap rule: crate sources under crates/,
/// excluding bin targets (bench regenerators, xtask itself) — binaries
/// may panic on broken invariants at top level, libraries must not.
fn in_library_scope(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/") && s.contains("/src/") && !s.contains("/src/bin/")
}

/// Recursively collect `.rs` files, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_as_documented() {
        assert!(is_lib_root(Path::new("crates/ifdk/src/lib.rs")));
        assert!(is_lib_root(Path::new("examples/lib.rs")));
        assert!(!is_lib_root(Path::new("crates/bench/src/bin/gups.rs")));
        assert!(in_library_scope(Path::new("crates/ifdk/src/ring.rs")));
        assert!(!in_library_scope(Path::new("crates/bench/src/bin/gups.rs")));
        assert!(!in_library_scope(Path::new("examples/quickstart.rs")));
        assert!(!in_library_scope(Path::new(
            "tests/integration/end_to_end.rs"
        )));
    }

    #[test]
    fn lint_flags_a_seeded_fixture_tree() {
        let dir = std::env::temp_dir().join("xtask-lint-fixture");
        let src_dir = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src_dir).expect("create fixture tree");
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
        )
        .expect("write fixture");
        let found = lint(&dir).expect("lint runs");
        let rendered: Vec<String> = found.iter().map(|v| v.to_string()).collect();
        assert!(
            rendered
                .iter()
                .any(|v| v.starts_with("crates/demo/src/lib.rs:1: [forbid-unsafe]")),
            "{rendered:?}"
        );
        assert!(
            rendered
                .iter()
                .any(|v| v.starts_with("crates/demo/src/lib.rs:2: [no-unwrap]")),
            "{rendered:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
