//! `ci/analyze.conf` — the analyzer's declared contract.
//!
//! The config is checked in next to the code it constrains, so the
//! negative-control fixture tree can carry its own (with a deliberately
//! broken layering declaration). Line format, `#` comments allowed:
//!
//! ```text
//! root ct_bp::tiled                  # panic-reachability root (prefix)
//! layer ct-bp: ct-core ct-obs ct-par # declared dependency edges
//! result-crate ct-obs               # determinism-checked crate
//! alloc-root ct_bp::warp::Sampler    # alloc-reachability root (prefix)
//! blocking ct_sync::ring::RingBuffer::push # blocking fn (prefix)
//! float-root ct_bp::lanes            # strict-mode FMA-gate root (prefix)
//! bounds-root ct_sync::ring          # index-bounds hot root (prefix)
//! ```

use std::collections::BTreeMap;
use std::path::Path;

pub struct Config {
    /// Qualified-name prefixes seeding panic reachability.
    pub roots: Vec<String>,
    /// Declared layering DAG: crate package name → allowed deps.
    pub layers: BTreeMap<String, Vec<String>>,
    /// Crates whose exported values must not depend on hash-map order.
    pub result_crates: Vec<String>,
    /// Qualified-name prefixes seeding allocation reachability
    /// (hot-path entry points that must not touch the heap).
    pub alloc_roots: Vec<String>,
    /// Qualified-name prefixes of functions that may block the calling
    /// thread (ring/channel ops, condvar waits, parallel-fs I/O); the
    /// lock-discipline pass flags calls into them under a live guard.
    pub blocking: Vec<String>,
    /// Qualified-name prefixes of strict-mode kernel entry points:
    /// everything reachable must keep `mul_add` behind the FMA gate
    /// (float-determinism pass).
    pub float_roots: Vec<String>,
    /// Qualified-name prefixes of hot kernels whose slice indexing the
    /// interval analysis must prove in bounds (index-bounds pass).
    pub bounds_roots: Vec<String>,
    /// Where the config was read from (for diagnostics).
    pub path: std::path::PathBuf,
}

impl Config {
    pub fn load(root: &Path) -> Result<Config, String> {
        let path = root.join("ci/analyze.conf");
        let text = std::fs::read_to_string(&path).map_err(|e| {
            format!(
                "read {}: {e} (the analyzer needs ci/analyze.conf)",
                path.display()
            )
        })?;
        let mut conf = Config {
            roots: Vec::new(),
            layers: BTreeMap::new(),
            result_crates: Vec::new(),
            alloc_roots: Vec::new(),
            blocking: Vec::new(),
            float_roots: Vec::new(),
            bounds_roots: Vec::new(),
            path,
        };
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (kind, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match kind {
                "root" => conf.roots.push(rest.to_string()),
                "layer" => {
                    let (name, deps) = rest.split_once(':').ok_or_else(|| {
                        format!(
                            "{}:{}: layer line needs `crate: deps`",
                            conf.path.display(),
                            idx + 1
                        )
                    })?;
                    conf.layers.insert(
                        name.trim().to_string(),
                        deps.split_whitespace().map(str::to_string).collect(),
                    );
                }
                "result-crate" => conf.result_crates.push(rest.to_string()),
                "alloc-root" => conf.alloc_roots.push(rest.to_string()),
                "blocking" => conf.blocking.push(rest.to_string()),
                "float-root" => conf.float_roots.push(rest.to_string()),
                "bounds-root" => conf.bounds_roots.push(rest.to_string()),
                other => {
                    return Err(format!(
                        "{}:{}: unknown directive {other:?}",
                        conf.path.display(),
                        idx + 1
                    ));
                }
            }
        }
        if conf.roots.is_empty() {
            return Err(format!("{}: no `root` entries", conf.path.display()));
        }
        Ok(conf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive_kind() {
        let dir = std::env::temp_dir().join("xtask-conf-fixture");
        std::fs::create_dir_all(dir.join("ci")).expect("fixture dir");
        std::fs::write(
            dir.join("ci/analyze.conf"),
            "# comment\nroot ct_bp::tiled\nlayer ct-bp: ct-core ct-obs\nlayer ct-obs:\nresult-crate ct-obs\n\
             alloc-root ct_bp::warp\nblocking ct_sync::ring::RingBuffer::push\n\
             float-root ct_bp::lanes\nbounds-root ct_sync::ring\n",
        )
        .expect("write conf");
        let conf = Config::load(&dir).expect("conf loads");
        assert_eq!(conf.roots, vec!["ct_bp::tiled"]);
        assert_eq!(
            conf.layers.get("ct-bp"),
            Some(&vec!["ct-core".to_string(), "ct-obs".to_string()])
        );
        assert_eq!(conf.layers.get("ct-obs"), Some(&Vec::new()));
        assert_eq!(conf.result_crates, vec!["ct-obs"]);
        assert_eq!(conf.alloc_roots, vec!["ct_bp::warp"]);
        assert_eq!(conf.blocking, vec!["ct_sync::ring::RingBuffer::push"]);
        assert_eq!(conf.float_roots, vec!["ct_bp::lanes"]);
        assert_eq!(conf.bounds_roots, vec!["ct_sync::ring"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
