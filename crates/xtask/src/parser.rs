//! A recursive-descent item parser over masked Rust source.
//!
//! This is deliberately not a full Rust grammar: the analyzer needs the
//! *item tree* — modules, functions (with arity and body spans), impl
//! and trait blocks, `use` declarations, integer consts — and nothing
//! else. It runs on [`crate::lexer::lex`]'s masked text, so comments and
//! literal bodies are already spaces and brace matching cannot be fooled
//! by strings. Anything the parser does not understand is skipped one
//! token at a time; an unparsed item simply contributes no call-graph
//! nodes, which keeps the analysis conservative (unknown code is opaque,
//! never trusted).

/// One parsed item.
pub struct Item {
    pub kind: ItemKind,
}

pub enum ItemKind {
    /// `mod name { ... }` (inline). `mod name;` declarations are not
    /// recorded — file-backed module paths come from file paths.
    Mod { name: String, items: Vec<Item> },
    /// A free function (or method, when nested in an impl/trait).
    Fn(FnDecl),
    /// `impl Type { ... }` or `impl Trait for Type { ... }`; methods are
    /// namespaced under the *type* name.
    Impl { type_name: String, items: Vec<Item> },
    /// `trait Name { ... }` — default method bodies are analyzable.
    Trait { name: String, items: Vec<Item> },
    /// Flattened `use` declaration: local name → absolute-ish path.
    Use {
        bindings: Vec<UseBinding>,
        globs: Vec<Vec<String>>,
    },
    /// `const NAME: T = <int literal>;` — the analyzer uses these to
    /// prove divisors nonzero. `value` is `None` for non-integer or
    /// non-literal initializers.
    Const { name: String, value: Option<u128> },
}

/// `use a::b::c as d` ⇒ `name: "d", path: ["a", "b", "c"]`.
pub struct UseBinding {
    pub name: String,
    pub path: Vec<String>,
}

pub struct FnDecl {
    pub name: String,
    pub line: usize,
    /// Number of non-`self` parameters.
    pub arity: usize,
    pub has_self: bool,
    /// Byte span of the body in the masked text, braces included.
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Marked `#[test]` / under `#[cfg(test)]` — excluded from analysis.
    pub is_test: bool,
    /// Compiled out of the production build (`#[cfg(loom)]` et al).
    pub cfg_off: bool,
}

/// Parse the items of one masked source file.
pub fn parse(masked: &str) -> Vec<Item> {
    let mut p = Parser {
        b: masked.as_bytes(),
        s: masked,
        pos: 0,
    };
    p.items(masked.len())
}

struct Parser<'a> {
    b: &'a [u8],
    s: &'a str,
    pos: usize,
}

/// Item-level modifier words that may precede a keyword we care about.
const MODIFIERS: &[&str] = &["pub", "const", "async", "unsafe", "extern", "default"];

impl<'a> Parser<'a> {
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut out = Vec::new();
        while self.pos < end {
            self.skip_ws(end);
            if self.pos >= end {
                break;
            }
            let attrs = self.attributes(end);
            self.skip_ws(end);
            let line = self.line();
            let is_test = attrs_mark_test(&attrs);
            let cfg_off = attrs_mark_off(&attrs);
            let Some(kw) = self.item_keyword(end) else {
                self.bump_token(end);
                continue;
            };
            let item = match kw.as_str() {
                "fn" => self.fn_item(end).map(|mut f| {
                    f.line = line;
                    f.is_test |= is_test;
                    f.cfg_off |= cfg_off;
                    ItemKind::Fn(f)
                }),
                "mod" => self.mod_item(end),
                "impl" => self.impl_item(end),
                "trait" => self.trait_item(end),
                "use" => self.use_item(end),
                "const" | "static" => self.const_item(end),
                _ => {
                    self.skip_item_body(end);
                    None
                }
            };
            if let Some(kind) = item {
                // Test/cfg flags inherit downward onto every nested fn.
                let mut it = Item { kind };
                if is_test || cfg_off {
                    mark_nested(&mut it, is_test, cfg_off);
                }
                out.push(it);
            }
        }
        out
    }

    /// Consume modifier words, returning the first item keyword found.
    /// Leaves `pos` just after the keyword.
    fn item_keyword(&mut self, end: usize) -> Option<String> {
        loop {
            self.skip_ws(end);
            let word = self.peek_word(end)?;
            match word.as_str() {
                "const" | "static" => {
                    // `const fn f` vs `const X: T`. Peek past the word.
                    let save = self.pos;
                    self.take_word(end);
                    self.skip_ws(end);
                    if self.peek_word(end).as_deref() == Some("fn") {
                        continue; // treat as a modifier
                    }
                    self.pos = save;
                    self.take_word(end);
                    return Some(word);
                }
                w if MODIFIERS.contains(&w) => {
                    self.take_word(end);
                    self.skip_ws(end);
                    // `pub(crate)`, `extern "C"` operands.
                    if self.cur() == Some(b'(') {
                        self.skip_group(b'(', b')', end);
                    } else if self.cur() == Some(b'"') {
                        self.pos += 1;
                        while self.pos < end && self.cur() != Some(b'"') {
                            self.pos += 1;
                        }
                        self.pos = (self.pos + 1).min(end);
                    }
                }
                _ => {
                    self.take_word(end);
                    return Some(word);
                }
            }
        }
    }

    fn fn_item(&mut self, end: usize) -> Option<FnDecl> {
        self.skip_ws(end);
        let name = self.take_word(end)?;
        self.skip_ws(end);
        if self.cur() == Some(b'<') {
            self.skip_angles(end);
        }
        self.skip_ws(end);
        if self.cur() != Some(b'(') {
            return None;
        }
        let (arity, has_self) = self.param_list(end);
        // Return type / where clause: scan to `{` or `;` at depth 0.
        let mut depth = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => break,
                b';' if depth == 0 => {
                    self.pos += 1;
                    return Some(FnDecl {
                        name,
                        line: 0,
                        arity,
                        has_self,
                        body: None,
                        is_test: false,
                        cfg_off: false,
                    });
                }
                _ => {}
            }
            self.pos += 1;
        }
        let start = self.pos;
        self.skip_group(b'{', b'}', end);
        Some(FnDecl {
            name,
            line: 0,
            arity,
            has_self,
            body: Some((start, self.pos.min(end))),
            is_test: false,
            cfg_off: false,
        })
    }

    /// Parse `( ... )`, returning (non-self arity, has_self). Commas are
    /// counted at top level only; `<...>` generic arguments in parameter
    /// types are tracked so `HashMap<K, V>` does not split a parameter.
    fn param_list(&mut self, end: usize) -> (usize, bool) {
        let open = self.pos;
        self.pos += 1; // consume `(`
        let mut depth = 0i32;
        let mut angle = 0i32;
        let mut commas = 0usize;
        let mut trailing_comma = false;
        let mut saw_token = false;
        while self.pos < end {
            let c = self.b[self.pos];
            match c {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if c == b')' && depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b'<' => angle += 1,
                b'-' if self.b.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    continue;
                }
                b'>' => angle = (angle - 1).max(0),
                b',' if depth == 0 && angle == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    self.pos += 1;
                    continue;
                }
                _ => {}
            }
            if !c.is_ascii_whitespace() {
                if c != b',' {
                    trailing_comma = false;
                }
                saw_token = true;
            }
            self.pos += 1;
        }
        self.pos = (self.pos + 1).min(end); // consume `)`
        if !saw_token {
            return (0, false);
        }
        let params = commas + 1 - usize::from(trailing_comma);
        // `self` receiver: first tokens are `self` / `&self` /
        // `&'a mut self` / `mut self` / `self: Arc<Self>`.
        let head = &self.s[open + 1..self.pos.saturating_sub(1).max(open + 1)];
        let head = head.trim_start().trim_start_matches('&').trim_start();
        let head = head.strip_prefix('\'').map_or(head, |h| {
            h.split_once(char::is_whitespace).map_or("", |(_, r)| r)
        });
        let head = head.trim_start();
        let head = head.strip_prefix("mut ").unwrap_or(head).trim_start();
        let has_self = head == "self"
            || head.starts_with("self,")
            || head.starts_with("self ")
            || head.starts_with("self:")
            || head.starts_with("self)");
        (params - usize::from(has_self), has_self)
    }

    fn mod_item(&mut self, end: usize) -> Option<ItemKind> {
        self.skip_ws(end);
        let name = self.take_word(end)?;
        self.skip_ws(end);
        match self.cur() {
            Some(b'{') => {
                let body_end = self.group_end(b'{', b'}', end);
                self.pos += 1;
                let items = self.items(body_end.saturating_sub(1));
                self.pos = body_end;
                Some(ItemKind::Mod { name, items })
            }
            _ => {
                // `mod name;` — path comes from the file layout.
                self.skip_to_semicolon(end);
                None
            }
        }
    }

    fn impl_item(&mut self, end: usize) -> Option<ItemKind> {
        let header_start = self.pos;
        // Scan the header to the body `{`, tracking angle depth so
        // `impl Sampler for Projection<'_>` does not stop early.
        let mut angle = 0i32;
        let mut depth = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'<' => angle += 1,
                b'-' if self.b.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    continue;
                }
                b'>' => angle = (angle - 1).max(0),
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if angle == 0 && depth == 0 => break,
                b';' if angle == 0 && depth == 0 => {
                    self.pos += 1;
                    return None;
                }
                _ => {}
            }
            self.pos += 1;
        }
        let header = &self.s[header_start..self.pos.min(end)];
        let type_name = impl_type_name(header);
        let body_end = self.group_end(b'{', b'}', end);
        self.pos += 1;
        let items = self.items(body_end.saturating_sub(1));
        self.pos = body_end;
        Some(ItemKind::Impl { type_name, items })
    }

    fn trait_item(&mut self, end: usize) -> Option<ItemKind> {
        self.skip_ws(end);
        let name = self.take_word(end)?;
        // Generics / supertrait bounds / where clause up to `{` or `;`.
        let mut angle = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'<' => angle += 1,
                b'-' if self.b.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    continue;
                }
                b'>' => angle = (angle - 1).max(0),
                b'{' if angle == 0 => break,
                b';' if angle == 0 => {
                    self.pos += 1;
                    return None;
                }
                _ => {}
            }
            self.pos += 1;
        }
        let body_end = self.group_end(b'{', b'}', end);
        self.pos += 1;
        let items = self.items(body_end.saturating_sub(1));
        self.pos = body_end;
        Some(ItemKind::Trait { name, items })
    }

    fn use_item(&mut self, end: usize) -> Option<ItemKind> {
        let mut bindings = Vec::new();
        let mut globs = Vec::new();
        self.use_tree(Vec::new(), end, &mut bindings, &mut globs);
        self.skip_to_semicolon(end);
        Some(ItemKind::Use { bindings, globs })
    }

    /// One `use` subtree: `a::b::{c, d as e, f::*}` relative to `prefix`.
    fn use_tree(
        &mut self,
        mut prefix: Vec<String>,
        end: usize,
        bindings: &mut Vec<UseBinding>,
        globs: &mut Vec<Vec<String>>,
    ) {
        loop {
            self.skip_ws(end);
            match self.cur() {
                Some(b'{') => {
                    let group_end = self.group_end(b'{', b'}', end);
                    self.pos += 1;
                    loop {
                        self.skip_ws(group_end.saturating_sub(1));
                        if self.pos >= group_end.saturating_sub(1) {
                            break;
                        }
                        self.use_tree(prefix.clone(), group_end.saturating_sub(1), bindings, globs);
                        self.skip_ws(group_end.saturating_sub(1));
                        if self.cur() == Some(b',') {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    self.pos = group_end;
                    return;
                }
                Some(b'*') => {
                    self.pos += 1;
                    globs.push(prefix);
                    return;
                }
                _ => {}
            }
            let Some(seg) = self.take_word(end) else {
                return;
            };
            self.skip_ws(end);
            if seg == "as" {
                // `prefix as rename` — previous segment was the target.
                if let Some(name) = self.take_word(end) {
                    bindings.push(UseBinding { name, path: prefix });
                }
                return;
            }
            if seg == "self" && !prefix.is_empty() {
                // `a::b::{self}` binds `b`.
                let name = prefix.last().cloned().unwrap_or_default();
                bindings.push(UseBinding { name, path: prefix });
                return;
            }
            prefix.push(seg);
            if self.cur() == Some(b':') && self.b.get(self.pos + 1) == Some(&b':') {
                self.pos += 2;
                continue;
            }
            // Path ends here; an `as rename` may follow, otherwise the
            // last segment is the bound name.
            let save = self.pos;
            if self.take_word(end).as_deref() == Some("as") {
                if let Some(name) = self.take_word(end) {
                    bindings.push(UseBinding { name, path: prefix });
                    return;
                }
            }
            self.pos = save;
            let name = prefix.last().cloned().unwrap_or_default();
            bindings.push(UseBinding { name, path: prefix });
            return;
        }
    }

    fn const_item(&mut self, end: usize) -> Option<ItemKind> {
        self.skip_ws(end);
        let name = self.take_word(end)?;
        let start = self.pos;
        self.skip_to_semicolon(end);
        let text = &self.s[start..self.pos.min(end)];
        let value = text
            .split_once('=')
            .and_then(|(_, v)| parse_int_literal(v.trim().trim_end_matches(';').trim()));
        Some(ItemKind::Const { name, value })
    }

    /// Skip an item we do not model (struct/enum/type/macro_rules/...):
    /// advance to the first `;` or matched `{...}` at depth 0.
    fn skip_item_body(&mut self, end: usize) {
        let mut depth = 0i32;
        let mut angle = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'<' => angle += 1,
                b'-' if self.b.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    continue;
                }
                b'>' => angle = (angle - 1).max(0),
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 && angle == 0 => {
                    self.skip_group(b'{', b'}', end);
                    return;
                }
                b';' if depth == 0 && angle == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn attributes(&mut self, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            self.skip_ws(end);
            if self.cur() == Some(b'#')
                && matches!(self.b.get(self.pos + 1), Some(b'[') | Some(b'!'))
            {
                let start = self.pos;
                self.pos += 1;
                if self.cur() == Some(b'!') {
                    self.pos += 1;
                }
                if self.cur() == Some(b'[') {
                    self.skip_group(b'[', b']', end);
                }
                out.push(self.s[start..self.pos.min(end)].to_string());
            } else {
                return out;
            }
        }
    }

    fn skip_ws(&mut self, end: usize) {
        while self.pos < end && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn cur(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn peek_word(&self, end: usize) -> Option<String> {
        let mut j = self.pos;
        while j < end && is_ident(self.b[j]) {
            j += 1;
        }
        (j > self.pos).then(|| self.s[self.pos..j].to_string())
    }

    fn take_word(&mut self, end: usize) -> Option<String> {
        self.skip_ws(end);
        let w = self.peek_word(end)?;
        self.pos += w.len();
        Some(w)
    }

    /// Advance past one uninterpreted token (error recovery).
    fn bump_token(&mut self, end: usize) {
        if self.take_word(end).is_none() && self.pos < end {
            match self.cur() {
                Some(b'{') => self.skip_group(b'{', b'}', end),
                Some(b'(') => self.skip_group(b'(', b')', end),
                Some(b'[') => self.skip_group(b'[', b']', end),
                _ => self.pos += 1,
            }
        }
    }

    /// Byte just past the group closed by `close`, assuming `pos` is at
    /// `open`.
    fn group_end(&self, open: u8, close: u8, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = self.pos;
        while j < end {
            let c = self.b[j];
            if c == open {
                depth += 1;
            } else if c == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    fn skip_group(&mut self, open: u8, close: u8, end: usize) {
        self.pos = self.group_end(open, close, end);
    }

    /// Skip `<...>` generics, treating `->` as an opaque token so
    /// `fn f<F: Fn() -> u8>` closes at the right angle bracket.
    fn skip_angles(&mut self, end: usize) {
        let mut depth = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'<' => depth += 1,
                b'-' if self.b.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    continue;
                }
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn skip_to_semicolon(&mut self, end: usize) {
        let mut depth = 0i32;
        while self.pos < end {
            match self.b[self.pos] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b';' if depth <= 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn line(&self) -> usize {
        self.b[..self.pos.min(self.b.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
            + 1
    }
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// `impl<T> Trait for a::b::Type<'x>` → `Type`.
fn impl_type_name(header: &str) -> String {
    // The subject type is everything after the last top-level ` for `;
    // if there is none, it is the whole header (minus leading generics).
    let mut angle = 0i32;
    let b = header.as_bytes();
    let mut subject_start = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'<' => angle += 1,
            b'-' if b.get(i + 1) == Some(&b'>') => {
                i += 2;
                continue;
            }
            b'>' => angle = (angle - 1).max(0),
            b'f' if angle == 0
                && header[i..].starts_with("for")
                && header[..i].ends_with(char::is_whitespace)
                && header[i + 3..].starts_with(char::is_whitespace) =>
            {
                subject_start = i + 3;
            }
            _ => {}
        }
        i += 1;
    }
    let mut subject = header[subject_start..].trim();
    // Strip leading generics (`impl<T, const N: usize> Type<..>`): skip
    // the balanced `<..>` group so the subject starts at the type.
    if subject.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = subject.len();
        let sb = subject.as_bytes();
        let mut j = 0usize;
        while j < sb.len() {
            match sb[j] {
                b'<' => depth += 1,
                b'-' if sb.get(j + 1) == Some(&b'>') => {
                    j += 2;
                    continue;
                }
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = j + 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        subject = subject[cut..].trim();
    }
    // Strip refs and path prefix; the name is the last `::` segment
    // before any `<`.
    let subject = subject.trim_start_matches(['&', ' ']);
    let no_args = subject.split('<').next().unwrap_or(subject).trim();
    no_args
        .rsplit("::")
        .next()
        .unwrap_or(no_args)
        .trim()
        .to_string()
}

/// Parse `123`, `0x10`, `1_000`, `64usize` → value. `None` otherwise.
fn parse_int_literal(text: &str) -> Option<u128> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    let digits_end_trimmed = {
        // Re-attach hex digits eaten by the suffix trim (`0xff` → `0x`).
        let raw: String = text.chars().filter(|&c| c != '_').collect();
        if raw.starts_with("0x") || raw.starts_with("0X") {
            let hex: String = raw[2..]
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            return u128::from_str_radix(&hex, 16).ok();
        }
        t
    };
    digits_end_trimmed.parse().ok()
}

/// Inherit test/cfg-off flags onto every fn nested under an item.
fn mark_nested(item: &mut Item, is_test: bool, cfg_off: bool) {
    match &mut item.kind {
        ItemKind::Fn(f) => {
            f.is_test |= is_test;
            f.cfg_off |= cfg_off;
        }
        ItemKind::Mod { items, .. }
        | ItemKind::Impl { items, .. }
        | ItemKind::Trait { items, .. } => {
            for it in items {
                mark_nested(it, is_test, cfg_off);
            }
        }
        _ => {}
    }
}

/// Does this attribute set mark test-only code?
fn attrs_mark_test(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        let c: String = a.chars().filter(|c| !c.is_whitespace()).collect();
        c == "#[test]"
            || c.ends_with("::test]")
            || (c.starts_with("#[cfg(") && c.contains("test"))
            || c.starts_with("#[should_panic")
    })
}

/// Does this attribute set compile the item out of the production build
/// (`#[cfg(loom)]`)? `#[cfg(not(loom))]` is the production side.
fn attrs_mark_off(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        let c: String = a.chars().filter(|c| !c.is_whitespace()).collect();
        c.starts_with("#[cfg(") && c.contains("loom") && !c.contains("not(loom)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<Item> {
        parse(&lex(src).masked)
    }

    fn find_fn<'a>(items: &'a [Item], name: &str) -> &'a FnDecl {
        fn walk<'a>(items: &'a [Item], name: &str) -> Option<&'a FnDecl> {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) if f.name == name => return Some(f),
                    ItemKind::Mod { items, .. }
                    | ItemKind::Impl { items, .. }
                    | ItemKind::Trait { items, .. } => {
                        if let Some(f) = walk(items, name) {
                            return Some(f);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        walk(items, name).expect("fn present")
    }

    #[test]
    fn free_fn_arity_and_body() {
        let items = parse_src("pub fn add(a: u32, b: u32) -> u32 { a + b }\n");
        let f = find_fn(&items, "add");
        assert_eq!(f.arity, 2);
        assert!(!f.has_self);
        assert!(f.body.is_some());
    }

    #[test]
    fn generic_params_do_not_split_arity() {
        let items =
            parse_src("fn f<F: Fn(u8, u8) -> u8>(m: std::vec::Vec<(u8, u8)>, g: F) -> u8 { 0 }\n");
        assert_eq!(find_fn(&items, "f").arity, 2);
    }

    #[test]
    fn methods_detect_self_and_land_under_the_type() {
        let src =
            "struct S;\nimpl S {\n  pub fn m(&mut self, x: u32) {}\n  fn assoc() -> S { S }\n}\n";
        let items = parse_src(src);
        let ItemKind::Impl { type_name, items } = &items[0].kind else {
            panic!("impl parsed");
        };
        assert_eq!(type_name, "S");
        assert_eq!(items.len(), 2);
        let m = find_fn(items, "m");
        assert!(m.has_self);
        assert_eq!(m.arity, 1);
        assert!(!find_fn(items, "assoc").has_self);
    }

    #[test]
    fn generic_impl_header_keeps_the_type_name() {
        let src = "impl<T, const N: usize> RingBuffer<T, N> {\n  pub fn push(&self, v: T) {}\n}\n";
        let items = parse_src(src);
        let ItemKind::Impl { type_name, .. } = &items[0].kind else {
            panic!("impl parsed");
        };
        assert_eq!(type_name, "RingBuffer");
    }

    #[test]
    fn trait_impl_lands_under_the_subject_type() {
        let src = "impl<'a> Sampler for Projection<'a> {\n  fn sample(&self, u: f32, v: f32) -> f32 { 0.0 }\n}\n";
        let items = parse_src(src);
        let ItemKind::Impl { type_name, .. } = &items[0].kind else {
            panic!("impl parsed");
        };
        assert_eq!(type_name, "Projection");
    }

    #[test]
    fn nested_mods_nest() {
        let src = "mod outer {\n  pub mod inner {\n    pub fn leaf() {}\n  }\n}\n";
        let items = parse_src(src);
        let ItemKind::Mod { name, items } = &items[0].kind else {
            panic!("mod parsed");
        };
        assert_eq!(name, "outer");
        let ItemKind::Mod { name, items } = &items[0].kind else {
            panic!("inner mod parsed");
        };
        assert_eq!(name, "inner");
        assert_eq!(find_fn(items, "leaf").arity, 0);
    }

    #[test]
    fn use_renames_and_groups_flatten() {
        let src = "use crate::pair::{SlabPair, stitch as join};\nuse ct_core::Volume;\nuse crate::warp::*;\n";
        let items = parse_src(src);
        let mut bindings = Vec::new();
        let mut globs = Vec::new();
        for it in &items {
            if let ItemKind::Use {
                bindings: b,
                globs: g,
            } = &it.kind
            {
                bindings.extend(b.iter().map(|u| (u.name.clone(), u.path.join("::"))));
                globs.extend(g.iter().map(|p| p.join("::")));
            }
        }
        assert!(bindings.contains(&("SlabPair".into(), "crate::pair::SlabPair".into())));
        assert!(bindings.contains(&("join".into(), "crate::pair::stitch".into())));
        assert!(bindings.contains(&("Volume".into(), "ct_core::Volume".into())));
        assert_eq!(globs, vec!["crate::warp".to_string()]);
    }

    #[test]
    fn macro_bodied_fns_keep_their_body_and_do_not_desync_the_parser() {
        // A fn whose body is one macro invocation stays a normal node
        // (the braces balance), and the items after it still parse —
        // macro content is never expanded, only read through.
        let src = "fn generated() -> u32 {\n  build_table! { 0 => 4, |i| i * 2 }\n}\npub fn after(x: u32) -> u32 { x }\n";
        let items = parse_src(src);
        let f = find_fn(&items, "generated");
        assert!(f.body.is_some(), "macro-bodied fn keeps a body range");
        assert_eq!(find_fn(&items, "after").arity, 1);
    }

    #[test]
    fn cfg_test_mod_marks_nested_fns() {
        let src =
            "#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}\nfn lib() {}\n";
        let items = parse_src(src);
        let ItemKind::Mod { items: inner, .. } = &items[0].kind else {
            panic!("mod parsed");
        };
        assert!(find_fn(inner, "helper").is_test);
        assert!(find_fn(inner, "t").is_test);
        assert!(!find_fn(&items, "lib").is_test);
    }

    #[test]
    fn cfg_loom_marks_items_off_but_not_cfg_not_loom() {
        let src = "#[cfg(loom)]\nfn model_only() {}\n#[cfg(not(loom))]\nfn production() {}\n";
        let items = parse_src(src);
        assert!(find_fn(&items, "model_only").cfg_off);
        assert!(!find_fn(&items, "production").cfg_off);
    }

    #[test]
    fn int_consts_are_captured() {
        let items =
            parse_src("const A: usize = 1_024;\nconst B: usize = 0x20;\npub const C: f32 = 1.5;\n");
        let vals: Vec<(String, Option<u128>)> = items
            .iter()
            .filter_map(|it| match &it.kind {
                ItemKind::Const { name, value } => Some((name.clone(), *value)),
                _ => None,
            })
            .collect();
        assert_eq!(vals[0], ("A".into(), Some(1024)));
        assert_eq!(vals[1], ("B".into(), Some(32)));
        assert_eq!(vals[2], ("C".into(), None));
    }

    #[test]
    fn trait_default_methods_have_bodies_declarations_do_not() {
        let src = "trait T {\n  fn required(&self, x: u32) -> u32;\n  fn provided(&self) -> u32 { self.required(1) }\n}\n";
        let items = parse_src(src);
        let ItemKind::Trait { name, items } = &items[0].kind else {
            panic!("trait parsed");
        };
        assert_eq!(name, "T");
        assert!(find_fn(items, "required").body.is_none());
        assert!(find_fn(items, "provided").body.is_some());
    }
}
