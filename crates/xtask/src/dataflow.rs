//! Generic forward fixpoint solver plus the interval domain.
//!
//! [`forward`] runs a worklist algorithm over a [`crate::cfg::Cfg`]:
//! block in-states live in a join-semilattice ([`Lattice`]), the
//! caller supplies a transfer function (block in-state → out-state)
//! and an edge refinement (branch condition + polarity → narrowed
//! state). Loop heads switch from `join` to `widen` after
//! [`WIDEN_AFTER`] merges, which is what guarantees termination on
//! domains with infinite ascending chains (intervals); a global
//! iteration valve forces widening everywhere as a backstop against
//! mislowered graphs.
//!
//! The interval half ([`Bound`], [`Interval`], [`Env`]) is the domain
//! of the index-bounds pass: integer ranges whose endpoints are
//! either literals or symbolic `len(base) + k` terms, so `i <
//! xs.len()` refines `i` to a bound the access check can compare
//! against `xs` directly. Slice lengths are only known non-negative —
//! every comparison below leans on exactly that fact and nothing else.

use crate::cfg::{Block, Cfg, Cond};
use std::collections::BTreeMap;

/// Join-semilattice interface for forward dataflow states.
pub trait Lattice: Clone + PartialEq {
    /// Merge `other` into `self`; true if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
    /// Widening merge used at loop heads once a state keeps growing;
    /// must reach a fixpoint in finitely many steps. Domains with
    /// finite height can keep the default (= join).
    fn widen(&mut self, other: &Self) -> bool {
        self.join(other)
    }
}

/// Merges at a loop head before switching from join to widen.
pub const WIDEN_AFTER: usize = 3;

pub struct Solution<L> {
    /// Per-block in-state; `None` = unreachable (bottom).
    pub inputs: Vec<Option<L>>,
    /// Blocks processed (worklist pops).
    pub iterations: usize,
    /// Widening merges applied.
    pub widenings: usize,
}

/// Solve a forward dataflow problem to fixpoint.
pub fn forward<L, T, R>(cfg: &Cfg, entry: L, mut transfer: T, mut refine: R) -> Solution<L>
where
    L: Lattice,
    T: FnMut(usize, &Block, &L) -> L,
    R: FnMut(&Cond, &L) -> L,
{
    let n = cfg.blocks.len();
    let order = crate::cfg::rpo(cfg);
    let mut pos = vec![0usize; n];
    for (p, &b) in order.iter().enumerate() {
        pos[b] = p;
    }
    let mut inputs: Vec<Option<L>> = vec![None; n];
    inputs[cfg.entry] = Some(entry);
    let mut merges = vec![0usize; n];
    let mut iterations = 0usize;
    let mut widenings = 0usize;
    // Worklist keyed by RPO position for near-topological processing.
    let mut work: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    work.insert(pos[cfg.entry]);
    // Backstop: beyond this, widen on every merge, loop head or not.
    let valve = n.saturating_mul(64).max(256);

    while let Some(&p) = work.iter().next() {
        work.remove(&p);
        let blk = order[p];
        iterations += 1;
        let Some(in_state) = inputs[blk].clone() else {
            continue;
        };
        let out = transfer(blk, &cfg.blocks[blk], &in_state);
        for e in &cfg.blocks[blk].edges {
            let val = match &e.cond {
                Some(c) => refine(c, &out),
                None => out.clone(),
            };
            let changed = match &mut inputs[e.to] {
                None => {
                    inputs[e.to] = Some(val);
                    true
                }
                Some(cur) => {
                    merges[e.to] += 1;
                    let widen_here = (cfg.blocks[e.to].loop_head && merges[e.to] > WIDEN_AFTER)
                        || iterations > valve;
                    if widen_here {
                        widenings += 1;
                        cur.widen(&val)
                    } else {
                        cur.join(&val)
                    }
                }
            };
            if changed {
                work.insert(pos[e.to]);
            }
        }
    }
    Solution {
        inputs,
        iterations,
        widenings,
    }
}

// ---------------------------------------------------------------------
// Interval domain with symbolic slice-length bounds.
// ---------------------------------------------------------------------

/// An interval endpoint: -inf, a literal, `len(base) + off`, or +inf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bound {
    NegInf,
    Int(i128),
    /// `len(base) + off` where `base` is a slice-valued place name and
    /// `len(base) >= 0` is the only known fact about it.
    Len {
        base: String,
        off: i128,
    },
    PosInf,
}

impl Bound {
    /// Sound minimum usable as a lower bound of both.
    fn lower_min(a: &Bound, b: &Bound) -> Bound {
        use Bound::*;
        match (a, b) {
            (NegInf, _) | (_, NegInf) => NegInf,
            (PosInf, x) | (x, PosInf) => x.clone(),
            (Int(x), Int(y)) => Int(*x.min(y)),
            (Len { base: ba, off: oa }, Len { base: bb, off: ob }) if ba == bb => Len {
                base: ba.clone(),
                off: *oa.min(ob),
            },
            // len >= 0, so min(k, len+o) >= min(k, o).
            (Int(k), Len { off, .. }) | (Len { off, .. }, Int(k)) => Int(*k.min(off)),
            _ => NegInf,
        }
    }

    /// Sound maximum usable as an upper bound of both.
    fn upper_max(a: &Bound, b: &Bound) -> Bound {
        use Bound::*;
        match (a, b) {
            (PosInf, _) | (_, PosInf) => PosInf,
            (NegInf, x) | (x, NegInf) => x.clone(),
            (Int(x), Int(y)) => Int(*x.max(y)),
            (Len { base: ba, off: oa }, Len { base: bb, off: ob }) if ba == bb => Len {
                base: ba.clone(),
                off: *oa.max(ob),
            },
            // len + max(o, k) >= len + o and >= k (len >= 0).
            (Int(k), Len { base, off }) | (Len { base, off }, Int(k)) => Len {
                base: base.clone(),
                off: *off.max(k),
            },
            _ => PosInf,
        }
    }

    /// Is `self <= other` provable? (Partial: false means "unknown".)
    pub fn le(&self, other: &Bound) -> bool {
        use Bound::*;
        match (self, other) {
            (NegInf, _) | (_, PosInf) => true,
            (Int(a), Int(b)) => a <= b,
            (Len { base: ba, off: oa }, Len { base: bb, off: ob }) => ba == bb && oa <= ob,
            // k <= len + o iff k <= o (len >= 0); len + o <= k is never
            // provable (len is unbounded above).
            (Int(k), Len { off, .. }) => k <= off,
            _ => false,
        }
    }

    pub fn add_const(&self, k: i128) -> Bound {
        match self {
            Bound::Int(x) => Bound::Int(x.saturating_add(k)),
            Bound::Len { base, off } => Bound::Len {
                base: base.clone(),
                off: off.saturating_add(k),
            },
            b => b.clone(),
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    pub lo: Bound,
    pub hi: Bound,
}

impl Interval {
    pub fn top() -> Interval {
        Interval {
            lo: Bound::NegInf,
            hi: Bound::PosInf,
        }
    }

    pub fn exact(n: i128) -> Interval {
        Interval {
            lo: Bound::Int(n),
            hi: Bound::Int(n),
        }
    }

    pub fn of_len(base: &str, off: i128) -> Interval {
        Interval {
            lo: Bound::Len {
                base: base.to_string(),
                off,
            },
            hi: Bound::Len {
                base: base.to_string(),
                off,
            },
        }
    }

    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: Bound::lower_min(&self.lo, &other.lo),
            hi: Bound::upper_max(&self.hi, &other.hi),
        }
    }

    /// Standard interval widening: any endpoint still moving jumps to
    /// its infinity.
    pub fn widen(&self, next: &Interval) -> Interval {
        let lo = if Bound::lower_min(&self.lo, &next.lo) == self.lo {
            self.lo.clone()
        } else {
            Bound::NegInf
        };
        let hi = if Bound::upper_max(&self.hi, &next.hi) == self.hi {
            self.hi.clone()
        } else {
            Bound::PosInf
        };
        Interval { lo, hi }
    }

    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: bound_add(&self.lo, &other.lo, Bound::NegInf),
            hi: bound_add(&self.hi, &other.hi, Bound::PosInf),
        }
    }

    pub fn sub(&self, other: &Interval) -> Interval {
        // [a, b] - [c, d] = [a - d, b - c].
        Interval {
            lo: bound_sub(&self.lo, &other.hi, Bound::NegInf),
            hi: bound_sub(&self.hi, &other.lo, Bound::PosInf),
        }
    }

    pub fn mul(&self, other: &Interval) -> Interval {
        use Bound::Int;
        // Only literal x literal is tracked; anything symbolic escapes.
        if let (Int(a), Int(b), Int(c), Int(d)) = (&self.lo, &self.hi, &other.lo, &other.hi) {
            let products = [
                a.saturating_mul(*c),
                a.saturating_mul(*d),
                b.saturating_mul(*c),
                b.saturating_mul(*d),
            ];
            Interval {
                lo: Int(*products.iter().min().expect("nonempty")),
                hi: Int(*products.iter().max().expect("nonempty")),
            }
        } else {
            Interval::top()
        }
    }

    /// Pointwise min (`x.min(y)`): sound on both endpoints.
    pub fn clamp_min(&self, other: &Interval) -> Interval {
        Interval {
            lo: Bound::lower_min(&self.lo, &other.lo),
            hi: match (&self.hi, &other.hi) {
                (a, Bound::PosInf) => a.clone(),
                (Bound::PosInf, b) => b.clone(),
                (a, b) if a.le(b) => a.clone(),
                (a, b) if b.le(a) => b.clone(),
                // Incomparable: either is a sound upper bound of min().
                (a, _) => a.clone(),
            },
        }
    }

    /// Pointwise max (`x.max(y)`).
    pub fn clamp_max(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (&self.lo, &other.lo) {
                (a, Bound::NegInf) => a.clone(),
                (Bound::NegInf, b) => b.clone(),
                (a, b) if a.le(b) => b.clone(),
                (a, b) if b.le(a) => a.clone(),
                (a, _) => a.clone(),
            },
            hi: Bound::upper_max(&self.hi, &other.hi),
        }
    }
}

fn bound_add(a: &Bound, b: &Bound, inf: Bound) -> Bound {
    use Bound::*;
    match (a, b) {
        (Int(x), Int(y)) => Int(x.saturating_add(*y)),
        (Len { base, off }, Int(k)) | (Int(k), Len { base, off }) => Len {
            base: base.clone(),
            off: off.saturating_add(*k),
        },
        _ => inf,
    }
}

fn bound_sub(a: &Bound, b: &Bound, inf: Bound) -> Bound {
    use Bound::*;
    match (a, b) {
        (Int(x), Int(y)) => Int(x.saturating_sub(*y)),
        (Len { base, off }, Int(k)) => Len {
            base: base.clone(),
            off: off.saturating_sub(*k),
        },
        _ => inf,
    }
}

/// Variable environment: tracked vars to intervals plus known constant
/// lengths (`chunks_exact` bindings, fixed-size arrays). A variable
/// absent from the map is untracked (top), so `join` intersects keys.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Env {
    pub vars: BTreeMap<String, Interval>,
    pub lens: BTreeMap<String, i128>,
}

impl Env {
    pub fn get(&self, name: &str) -> Interval {
        self.vars.get(name).cloned().unwrap_or_else(Interval::top)
    }

    pub fn set(&mut self, name: &str, iv: Interval) {
        if iv == Interval::top() {
            self.vars.remove(name);
        } else {
            self.vars.insert(name.to_string(), iv);
        }
    }

    pub fn havoc(&mut self, name: &str) {
        self.vars.remove(name);
        self.lens.remove(name);
    }

    fn merge_with(&mut self, other: &Env, widen: bool) -> bool {
        let mut changed = false;
        let keys: Vec<String> = self.vars.keys().cloned().collect();
        for k in keys {
            match other.vars.get(&k) {
                Some(o) => {
                    let cur = &self.vars[&k];
                    let merged = if widen { cur.widen(o) } else { cur.join(o) };
                    if merged != *cur {
                        changed = true;
                        self.set(&k, merged);
                    }
                }
                None => {
                    self.vars.remove(&k);
                    changed = true;
                }
            }
        }
        let lkeys: Vec<String> = self.lens.keys().cloned().collect();
        for k in lkeys {
            if other.lens.get(&k) != self.lens.get(&k) {
                self.lens.remove(&k);
                changed = true;
            }
        }
        changed
    }
}

impl Lattice for Env {
    fn join(&mut self, other: &Self) -> bool {
        self.merge_with(other, false)
    }

    fn widen(&mut self, other: &Self) -> bool {
        self.merge_with(other, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;

    fn lower_first_fn(src: &str) -> (String, cfg::Cfg) {
        let lx = crate::lexer::lex(src);
        let items = crate::parser::parse(&lx.masked);
        for item in &items {
            if let crate::parser::ItemKind::Fn(f) = &item.kind {
                return (
                    lx.masked.clone(),
                    cfg::lower(&lx.masked, f.body.expect("body")),
                );
            }
        }
        panic!("no fn");
    }

    /// A transfer good enough for the tests: `let x = LIT;` assigns,
    /// `x += LIT;` shifts.
    fn toy_transfer(masked: &str) -> impl Fn(usize, &cfg::Block, &Env) -> Env + '_ {
        move |_, blk, state| {
            let mut env = state.clone();
            for s in &blk.stmts {
                let text = masked[s.span.0..s.span.1].trim();
                if let Some(rest) = text.strip_prefix("let mut ") {
                    if let Some((name, val)) = rest.split_once('=') {
                        if let Ok(n) = val.trim().trim_end_matches(';').parse::<i128>() {
                            env.set(name.trim(), Interval::exact(n));
                        }
                    }
                } else if let Some((name, val)) = text.split_once("+=") {
                    if let Ok(n) = val.trim().trim_end_matches(';').parse::<i128>() {
                        let cur = env.get(name.trim());
                        env.set(name.trim(), cur.add(&Interval::exact(n)));
                    }
                }
            }
            env
        }
    }

    #[test]
    fn termination_on_a_loop_carried_interval_requires_widening() {
        // `i` grows by one each trip: without widening the chain
        // [0,0] ⊑ [0,1] ⊑ [0,2] ⊑ ... never stabilizes. The solver
        // must terminate, must widen, and must conclude hi = +inf.
        let (m, g) = lower_first_fn("fn f() { let mut i = 0; loop { i += 1; } }");
        let sol = forward(&g, Env::default(), toy_transfer(&m), |_, s| s.clone());
        assert!(sol.widenings > 0, "widening never triggered");
        assert!(
            sol.iterations < g.blocks.len() * 64 + 256,
            "runaway iteration: {}",
            sol.iterations
        );
        let head = g.blocks.iter().position(|b| b.loop_head).expect("head");
        let at_head = sol.inputs[head].as_ref().expect("head reachable");
        let iv = at_head.get("i");
        assert_eq!(iv.lo, Bound::Int(0), "{iv:?}");
        assert_eq!(iv.hi, Bound::PosInf, "{iv:?}");
    }

    #[test]
    fn branch_states_join_at_the_merge_point() {
        let (m, g) = lower_first_fn(
            "fn f(c: bool) { let mut i = 0; if c { i += 5; } else { i += 2; } g(i); }",
        );
        let sol = forward(&g, Env::default(), toy_transfer(&m), |_, s| s.clone());
        // The block holding g(i) sees the join [2, 5].
        let callsite = g
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| m[s.span.0..s.span.1].contains("g(i)"))
            })
            .expect("callsite block");
        let env = sol.inputs[callsite].as_ref().expect("reachable");
        assert_eq!(env.get("i").lo, Bound::Int(2));
        assert_eq!(env.get("i").hi, Bound::Int(5));
    }

    #[test]
    fn refinement_narrows_along_edges() {
        let (m, g) = lower_first_fn("fn f(c: bool) { let mut i = 0; if c { i += 1; } h(i); }");
        // Refine polarity-true edges to i = [100, 100] to prove the
        // refiner is consulted with the right polarity.
        let sol = forward(&g, Env::default(), toy_transfer(&m), |cond, s: &Env| {
            let mut e = s.clone();
            if cond.polarity {
                e.set("i", Interval::exact(100));
            }
            e
        });
        let then_block = g
            .blocks
            .iter()
            .position(|b| {
                b.stmts
                    .iter()
                    .any(|s| m[s.span.0..s.span.1].contains("i += 1"))
            })
            .expect("then block");
        let env = sol.inputs[then_block].as_ref().expect("reachable");
        assert_eq!(env.get("i"), Interval::exact(100));
    }

    #[test]
    fn interval_arithmetic_and_symbolic_len_bounds() {
        let n = Interval::of_len("xs", 0);
        let i = Interval {
            lo: Bound::Int(0),
            hi: n.hi.add_const(-1),
        };
        // i + 1 has hi = len(xs): no longer <= len(xs) - 1.
        let ip1 = i.add(&Interval::exact(1));
        assert_eq!(
            ip1.hi,
            Bound::Len {
                base: "xs".into(),
                off: 0
            }
        );
        assert!(i.hi.le(&Bound::Len {
            base: "xs".into(),
            off: -1
        }));
        assert!(!ip1.hi.le(&Bound::Len {
            base: "xs".into(),
            off: -1
        }));
        // Int vs len comparisons only go the provable direction.
        assert!(Bound::Int(3).le(&Bound::Len {
            base: "xs".into(),
            off: 3
        }));
        assert!(!Bound::Int(4).le(&Bound::Len {
            base: "xs".into(),
            off: 3
        }));
        assert!(!Bound::Len {
            base: "xs".into(),
            off: 0
        }
        .le(&Bound::Int(1_000_000)));
    }

    #[test]
    fn env_join_intersects_keys_and_len_facts() {
        let mut a = Env::default();
        a.set("i", Interval::exact(1));
        a.set("j", Interval::exact(2));
        a.lens.insert("c".into(), 8);
        let mut b = Env::default();
        b.set("i", Interval::exact(4));
        b.lens.insert("c".into(), 8);
        let changed = a.join(&b);
        assert!(changed);
        assert_eq!(a.get("i").lo, Bound::Int(1));
        assert_eq!(a.get("i").hi, Bound::Int(4));
        assert_eq!(a.get("j"), Interval::top(), "j dropped — absent in b");
        assert_eq!(a.lens.get("c"), Some(&8));
    }

    #[test]
    fn widen_jumps_moving_endpoints_to_infinity() {
        let a = Interval::exact(0).join(&Interval::exact(3));
        let grown = a.add(&Interval::exact(1));
        let w = a.widen(&grown);
        assert_eq!(w.lo, Bound::Int(0), "stable endpoint kept");
        assert_eq!(w.hi, Bound::PosInf, "moving endpoint widened");
    }

    #[test]
    fn min_max_clamps_are_sound() {
        let big = Interval {
            lo: Bound::Int(0),
            hi: Bound::PosInf,
        };
        let cap = Interval::exact(7);
        let clamped = big.clamp_min(&cap);
        assert_eq!(clamped.hi, Bound::Int(7));
        assert_eq!(clamped.lo, Bound::Int(0));
        let floored = big.clamp_max(&Interval::exact(2));
        assert_eq!(floored.lo, Bound::Int(2));
    }
}
