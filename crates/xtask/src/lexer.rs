//! A small masking lexer for Rust source.
//!
//! The lint rules in this crate are token-level, not AST-level, so the
//! one thing they must never do is match text inside comments or string
//! literals (a doc comment mentioning `.unwrap()` is not a violation).
//! [`lex`] produces a *masked* copy of the source in which every comment
//! and every literal body is replaced by spaces — byte offsets and line
//! numbers are preserved exactly — plus the extracted string literals
//! (for rules that inspect literal contents, like obs-names) and any
//! `lint: allow(rule)` escape directives found in comments.

/// A string literal extracted from the source.
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Byte offset of the opening quote (or `r`/`b` prefix) in the
    /// masked text.
    pub start: usize,
    /// The literal's body, escapes left as written.
    pub text: String,
}

/// An `analyze: allow(<pass>, reason = "...")` directive found in a
/// comment. Unlike `lint: allow`, analyzer exemptions must carry a
/// reason string; a directive without one is itself reported.
pub struct AnalyzeAllow {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// The pass being exempted (`panic`, `layering`, `determinism`).
    pub pass: String,
    /// The quoted reason, if one was written.
    pub reason: Option<String>,
}

/// Result of masking one source file.
pub struct Lexed {
    /// Source with comments and literal bodies blanked to spaces.
    /// Same length and line structure as the input.
    pub masked: String,
    /// Every string literal, in source order.
    pub strings: Vec<StrLit>,
    /// Lines on which a `lint: allow(<rule>)` comment suppresses a rule.
    /// Each directive covers its own line and the following line, so it
    /// works both as a trailing comment and on the line above.
    pub allows: Vec<(usize, String)>,
    /// Analyzer exemption directives (pass name + mandatory reason),
    /// same coverage rule as `allows` (own line plus the next).
    pub analyze_allows: Vec<AnalyzeAllow>,
}

impl Lexed {
    /// True if `rule` is suppressed on 1-based `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }

    /// The analyzer exemption covering 1-based `line` for `pass`, if any.
    pub fn analyze_allowed(&self, line: usize, pass: &str) -> Option<&AnalyzeAllow> {
        self.analyze_allows
            .iter()
            .find(|a| a.pass == pass && (a.line == line || a.line + 1 == line))
    }
}

/// Mask `src`, classifying comments, string/char literals and lifetimes.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(b.len());
    let mut strings = Vec::new();
    let mut allows = Vec::new();
    let mut analyze_allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Push a byte to the mask, blanking everything but newlines.
    fn blank(masked: &mut Vec<u8>, line: &mut usize, c: u8) {
        if c == b'\n' {
            *line += 1;
            masked.push(b'\n');
        } else {
            masked.push(b' ');
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|o| i + o).unwrap_or(b.len());
                // Doc comments (`///`, `//!`) describe the directive
                // syntax; only plain `//` comments carry live escapes.
                if !matches!(b.get(i + 2), Some(b'/') | Some(b'!')) {
                    record_allows(&src[i..end], line, &mut allows);
                    record_analyze_allows(&src[i..end], line, &mut analyze_allows);
                }
                for &cc in &b[i..end] {
                    blank(&mut masked, &mut line, cc);
                }
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comments nest in Rust.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if !matches!(b.get(start + 2), Some(b'*') | Some(b'!')) {
                    record_allows(&src[start..i], line, &mut allows);
                    record_analyze_allows(&src[start..i], line, &mut analyze_allows);
                }
                for &cc in &b[start..i] {
                    blank(&mut masked, &mut line, cc);
                }
            }
            b'"' => {
                i = take_string(src, i, line, false, &mut masked, &mut strings, &mut line);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                i = take_prefixed_string(src, i, &mut masked, &mut strings, &mut line);
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes with a
                // `'` within a couple of bytes (or after an escape); a
                // lifetime never closes.
                if is_char_literal(b, i) {
                    let start = i;
                    masked.push(b'\'');
                    i += 1;
                    if b[i] == b'\\' {
                        i += 1; // escape introducer
                                // Skip to the closing quote (covers \n, \x7f, \u{..}).
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        // One (possibly multi-byte) char.
                        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                        i += ch_len;
                    }
                    masked.extend(std::iter::repeat_n(b' ', i - (start + 1)));
                    if i < b.len() {
                        masked.push(b'\'');
                        i += 1;
                    }
                } else {
                    masked.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                blank_or_keep(&mut masked, &mut line, c);
                i += 1;
            }
        }
    }

    Lexed {
        masked: String::from_utf8_lossy(&masked).into_owned(),
        strings,
        allows,
        analyze_allows,
    }
}

/// Code bytes are kept verbatim; only newlines advance the line counter.
fn blank_or_keep(masked: &mut Vec<u8>, line: &mut usize, c: u8) {
    if c == b'\n' {
        *line += 1;
    }
    masked.push(c);
}

/// Record `lint: allow(rule)` directives found in a comment's text.
fn record_allows(comment: &str, line: usize, allows: &mut Vec<(usize, String)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        let after = &rest[pos + "lint: allow(".len()..];
        if let Some(close) = after.find(')') {
            allows.push((line, after[..close].trim().to_string()));
            rest = &after[close..];
        } else {
            break;
        }
    }
}

/// Record analyzer exemption directives — `allow(panic, reason = "..")`
/// behind the analyzer's marker prefix. The reason clause is optional
/// at the syntax level — the panic pass reports a missing reason as its
/// own violation, so a bare `allow(panic)` is recorded here with
/// `reason: None` rather than dropped. A "pass name" that is not a
/// plain identifier (prose like `<pass>` in documentation) is not a
/// directive and is skipped.
fn record_analyze_allows(comment: &str, line: usize, out: &mut Vec<AnalyzeAllow>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("analyze: allow(") {
        rest = &rest[pos + "analyze: allow(".len()..];
        // Pass name: up to `,` or `)`.
        let name_end = rest.find([',', ')']).unwrap_or(rest.len());
        let pass = rest[..name_end].trim().to_string();
        let mut reason = None;
        if rest[name_end..].starts_with(',') {
            let clause = &rest[name_end + 1..];
            // Expect `reason = "..."`; the string may contain `)`.
            let ok = clause.trim_start().starts_with("reason");
            if ok {
                if let Some(q0) = clause.find('"') {
                    let body = &clause[q0 + 1..];
                    if let Some(q1) = body.find('"') {
                        let text = &body[..q1];
                        if !text.trim().is_empty() {
                            reason = Some(text.to_string());
                        }
                        rest = &body[q1..];
                    }
                }
            }
        }
        let is_ident = !pass.is_empty()
            && pass
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if is_ident {
            out.push(AnalyzeAllow { line, pass, reason });
        }
    }
}

/// Is `b[i]` the start of `r"`, `r#"`, `b"`, `br"` or `br#"`?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // Not a string prefix if preceded by an identifier char (e.g. `attr`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Is the `'` at `b[i]` a char literal (vs a lifetime)?
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // `'x'` closes immediately after one char; `'a` (lifetime) does not.
    // Multi-byte chars: scan at most 4 bytes for the closing quote.
    for &c in &b[i + 2..(i + 6).min(b.len())] {
        if c == b'\'' {
            return true;
        }
        if c == b'\n' {
            return false;
        }
    }
    false
}

/// Consume an ordinary `"..."` literal starting at `i`.
#[allow(clippy::too_many_arguments)]
fn take_string(
    src: &str,
    i: usize,
    start_line: usize,
    _byte: bool,
    masked: &mut Vec<u8>,
    strings: &mut Vec<StrLit>,
    line: &mut usize,
) -> usize {
    let b = src.as_bytes();
    let start = i;
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    strings.push(StrLit {
        line: start_line,
        start,
        text: src[start + 1..j.saturating_sub(1).max(start + 1)].to_string(),
    });
    masked.push(b'"');
    for &cc in &b[start + 1..j.saturating_sub(1).max(start + 1)] {
        blank(masked, line, cc);
    }
    if j > start + 1 {
        masked.push(b'"');
    }
    return j;

    fn blank(masked: &mut Vec<u8>, line: &mut usize, c: u8) {
        if c == b'\n' {
            *line += 1;
            masked.push(b'\n');
        } else {
            masked.push(b' ');
        }
    }
}

/// Consume a raw/byte string (`r"..."`, `r#"..."#`, `b"..."`, ...).
fn take_prefixed_string(
    src: &str,
    i: usize,
    masked: &mut Vec<u8>,
    strings: &mut Vec<StrLit>,
    line: &mut usize,
) -> usize {
    let b = src.as_bytes();
    let start = i;
    let start_line = *line;
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
    }
    let mut hashes = 0usize;
    if j < b.len() && b[j] == b'r' {
        raw = true;
        j += 1;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(b[j] == b'"');
    let body_start = j + 1;
    j += 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while j < b.len() {
        if !raw && b[j] == b'\\' {
            j += 2;
            continue;
        }
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            break;
        }
        j += 1;
    }
    let body_end = j.min(b.len());
    let end = (j + closer.len()).min(b.len());
    strings.push(StrLit {
        line: start_line,
        start,
        text: src[body_start.min(body_end)..body_end].to_string(),
    });
    for (k, &cc) in b[start..end].iter().enumerate() {
        let pos = start + k;
        if pos < body_start || pos >= body_end {
            // Keep the prefix/quotes so rules can see a string is here.
            if cc == b'\n' {
                *line += 1;
                masked.push(b'\n');
            } else {
                masked.push(cc);
            }
        } else if cc == b'\n' {
            *line += 1;
            masked.push(b'\n');
        } else {
            masked.push(b' ');
        }
    }
    end
}

/// Per-line flags marking test-only code: bodies of `#[cfg(test)]`
/// modules and `#[test]` functions. Works on masked text (no comment or
/// string can fake an attribute) by brace matching.
pub fn test_lines(masked: &str) -> Vec<bool> {
    let total = masked.lines().count() + 1;
    let mut flags = vec![false; total + 1];
    let b = masked.as_bytes();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(pos) = masked[from..].find(marker) {
            let at = from + pos;
            from = at + marker.len();
            // Skip any further attributes, then find the item's body.
            let mut j = at + marker.len();
            loop {
                while j < b.len() && (b[j] as char).is_whitespace() {
                    j += 1;
                }
                if j + 1 < b.len() && b[j] == b'#' && b[j + 1] == b'[' {
                    // Skip the attribute's brackets.
                    let mut depth = 0usize;
                    while j < b.len() {
                        match b[j] {
                            b'[' => depth += 1,
                            b']' => {
                                depth -= 1;
                                if depth == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            // Scan to the first `{` (item body) or `;` (no body).
            let mut body = None;
            while j < b.len() {
                match b[j] {
                    b'{' => {
                        body = Some(j);
                        break;
                    }
                    b';' => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body else { continue };
            // Match braces to the end of the body.
            let mut depth = 0usize;
            let mut k = open;
            while k < b.len() {
                match b[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let first = line_of(masked, at);
            let last = line_of(masked, k.min(b.len().saturating_sub(1)));
            for f in flags.iter_mut().take(last.min(total) + 1).skip(first) {
                *f = true;
            }
        }
    }
    flags
}

/// 1-based line number of byte offset `at`.
fn line_of(s: &str, at: usize) -> usize {
    s.as_bytes()[..at.min(s.len())]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"call .unwrap() here\"; // .unwrap()\nlet y = 1;\n";
        let out = lex(src);
        assert!(!out.masked.contains(".unwrap()"));
        assert!(out.masked.contains("let y = 1;"));
        assert_eq!(out.strings.len(), 1);
        assert_eq!(out.strings[0].text, "call .unwrap() here");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "/* a\nb */\nlet s = \"x\ny\";\nfn f() {}\n";
        let out = lex(src);
        let lines: Vec<&str> = out.masked.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[4].contains("fn f() {}"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = "let s = r#\"no \"escape\" done\"#; let t = 2;";
        let out = lex(src);
        assert_eq!(out.strings[0].text, "no \"escape\" done");
        assert!(out.masked.contains("let t = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { '\\'' }";
        let out = lex(src);
        assert!(out.masked.contains("fn f<'a>(x: &'a str)"));
        let src2 = "let q = '\"'; let s = \"lit\";";
        let out2 = lex(src2);
        assert_eq!(out2.strings.len(), 1);
        assert_eq!(out2.strings[0].text, "lit");
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "// lint: allow(no-unwrap)\nfoo.unwrap();\nbar.unwrap();\n";
        let out = lex(src);
        assert!(out.allowed(1, "no-unwrap"));
        assert!(out.allowed(2, "no-unwrap"));
        assert!(!out.allowed(3, "no-unwrap"));
        assert!(!out.allowed(2, "raw-clock"));
    }

    #[test]
    fn analyze_allow_directives_capture_pass_and_reason() {
        let src = "// analyze: allow(panic, reason = \"divisor checked (see above)\")\n\
                   let q = a / b;\n\
                   // analyze: allow(determinism)\n\
                   map.iter();\n";
        let out = lex(src);
        let a = out.analyze_allowed(2, "panic").expect("directive found");
        assert_eq!(a.reason.as_deref(), Some("divisor checked (see above)"));
        let d = out
            .analyze_allowed(4, "determinism")
            .expect("directive found");
        assert!(d.reason.is_none());
        assert!(out.analyze_allowed(2, "determinism").is_none());
        assert!(out.analyze_allowed(1, "panic").is_some());
        assert!(out.analyze_allowed(3, "panic").is_none());
    }

    #[test]
    fn analyze_allow_empty_reason_counts_as_missing() {
        let out = lex("// analyze: allow(panic, reason = \"\")\nx[0];\n");
        let a = out.analyze_allowed(2, "panic").expect("directive found");
        assert!(a.reason.is_none());
    }

    #[test]
    fn test_regions_cover_cfg_test_modules_and_test_fns() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn helper() {}\n\
                   }\n\
                   fn lib2() {}\n";
        let out = lex(src);
        let flags = test_lines(&out.masked);
        assert!(!flags[1]);
        assert!(flags[2] && flags[3] && flags[4] && flags[5]);
        assert!(!flags[6]);
    }

    #[test]
    fn test_fn_with_stacked_attributes() {
        let src =
            "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n  x();\n}\nfn lib() {}\n";
        let out = lex(src);
        let flags = test_lines(&out.masked);
        assert!(flags[1] && flags[3] && flags[4] && flags[5]);
        assert!(!flags[6]);
    }
}
