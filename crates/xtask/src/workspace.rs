//! Workspace model for `cargo xtask analyze`.
//!
//! Discovers every crate in the analyzed tree (including the standalone
//! `ct-sync` and `xtask` workspaces), reads the fraction of each
//! `Cargo.toml` the analyzer needs (package name, `[dependencies]`
//! keys), lexes and parses every production source file, and flattens
//! the item trees into a workspace-wide function table with per-file
//! import scopes. Test targets (`tests/`, `benches/`, `[[test]]`
//! integration files) are deliberately out of scope: the analysis
//! covers what ships.

use crate::lexer::{self, Lexed};
use crate::parser::{self, FnDecl, Item, ItemKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub struct CrateInfo {
    /// Package name as written in Cargo.toml (`ct-bp`).
    pub name: String,
    /// Rust identifier form (`ct_bp`).
    pub ident: String,
    /// Crate directory relative to the analyze root.
    pub dir: PathBuf,
    /// `[dependencies]` keys that name other workspace crates.
    pub deps: Vec<String>,
}

pub struct FileInfo {
    pub crate_idx: usize,
    /// Path relative to the analyze root (for diagnostics).
    pub rel: PathBuf,
    pub lexed: Lexed,
    pub test_lines: Vec<bool>,
    /// Import map: local name → absolute path segments (first segment
    /// is a crate ident, workspace or external).
    pub imports: Vec<(String, Vec<String>)>,
    /// Glob imports, as absolute path prefixes.
    pub globs: Vec<Vec<String>>,
}

pub struct FnInfo {
    pub file: usize,
    /// Fully qualified name: `ct_bp::tiled::TileConfig::resolve`.
    pub qual: String,
    /// Last segment.
    pub name: String,
    /// Module chain, crate ident first, excluding type and fn name.
    pub module: Vec<String>,
    /// Enclosing impl/trait type, if this is an associated fn.
    pub self_type: Option<String>,
    pub arity: usize,
    pub has_self: bool,
    pub body: Option<(usize, usize)>,
    pub is_test: bool,
    pub cfg_off: bool,
}

pub struct Workspace {
    pub root: PathBuf,
    pub crates: Vec<CrateInfo>,
    pub files: Vec<FileInfo>,
    pub fns: Vec<FnInfo>,
    /// Const names (last segment) every definition of which is a
    /// nonzero integer literal — provably safe divisors.
    pub nonzero_consts: BTreeSet<String>,
    /// Identifier names declared with an `f32`/`f64` type anywhere in
    /// the workspace (fields, params, let bindings). Used as float
    /// evidence by the division check; name-based, not scoped, which is
    /// a documented envelope trade-off.
    pub float_idents: BTreeSet<String>,
    /// Identifier names declared with an owning-container type
    /// (`Vec`, `VecDeque`, `String`, `Box`, the map/set types) or
    /// let-initialized from an allocating constructor. Used as
    /// allocation evidence for receiver-gated methods (`.push(..)`,
    /// `.clone()`) by the alloc-reachability pass; same name-based
    /// trade-off as `float_idents`.
    pub owning_idents: BTreeSet<String>,
    /// All workspace crate idents, for path resolution.
    pub crate_idents: BTreeSet<String>,
    /// `dep_closure[c]` = crate indices reachable from crate `c` over
    /// declared `[dependencies]` edges, including `c` itself. A method
    /// call in crate `c` can only dispatch to an impl `c` can see.
    pub dep_closure: Vec<BTreeSet<usize>>,
}

/// Directory names never descended into when collecting crate sources.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "tests", "benches", "integration"];

/// Load the workspace rooted at `root`.
pub fn load(root: &Path) -> Result<Workspace, String> {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
            .collect();
        dirs.sort();
        for dir in dirs {
            crates.push(read_crate(root, &dir)?);
        }
    }
    for extra in ["examples", "tests"] {
        let dir = root.join(extra);
        if dir.join("Cargo.toml").is_file() {
            crates.push(read_crate(root, &dir)?);
        }
    }
    if crates.is_empty() {
        return Err(format!("no crates found under {}", root.display()));
    }

    let crate_idents: BTreeSet<String> = crates.iter().map(|c| c.ident.clone()).collect();
    let dep_closure = dep_closure(&crates);
    let mut ws = Workspace {
        root: root.to_path_buf(),
        crates,
        files: Vec::new(),
        fns: Vec::new(),
        nonzero_consts: BTreeSet::new(),
        float_idents: BTreeSet::new(),
        owning_idents: BTreeSet::new(),
        crate_idents,
        dep_closure,
    };

    let mut const_values: BTreeMap<String, Vec<Option<u128>>> = BTreeMap::new();
    let mut work: Vec<(usize, PathBuf)> = Vec::new();
    for ci in 0..ws.crates.len() {
        let dir = ws.root.join(&ws.crates[ci].dir);
        let src = dir.join("src");
        let mut files = Vec::new();
        if src.is_dir() {
            collect_sources(&src, &mut files)?;
        } else {
            // Flat layout (the examples crate): targets sit next to the
            // manifest.
            let entries =
                std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            for e in entries.filter_map(|e| e.ok()) {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "rs") {
                    files.push(p);
                }
            }
        }
        files.sort();
        work.extend(files.into_iter().map(|p| (ci, p)));
    }

    // Read + lex + item-parse are pure per-file work, so they fan out
    // over scoped threads; integration below stays sequential in the
    // collected order so every derived table keeps its deterministic
    // layout regardless of thread scheduling.
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
        .min(work.len())
        .max(1);
    let mut slots: Vec<Option<Result<ParsedFile, String>>> = Vec::new();
    slots.resize_with(work.len(), || None);
    {
        let root_ref: &Path = &ws.root;
        let crates_ref = &ws.crates;
        let chunk = work.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slot_chunk, work_chunk) in slots.chunks_mut(chunk).zip(work.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, (ci, path)) in slot_chunk.iter_mut().zip(work_chunk) {
                        *slot = Some(parse_file(root_ref, crates_ref, *ci, path));
                    }
                });
            }
        });
    }
    for slot in slots {
        let parsed = slot.ok_or_else(|| "internal: parse slot left unfilled".to_string())??;
        integrate_file(&mut ws, parsed, &mut const_values);
    }

    ws.nonzero_consts = const_values
        .into_iter()
        .filter(|(_, vals)| vals.iter().all(|v| matches!(v, Some(n) if *n != 0)))
        .map(|(k, _)| k)
        .collect();
    for file in &ws.files {
        collect_float_idents(&file.lexed.masked, &mut ws.float_idents);
    }
    let mut owning = BTreeSet::new();
    for file in &ws.files {
        collect_owning_idents(&file.lexed.masked, &mut owning);
    }
    ws.owning_idents = owning;
    // Out-of-line modules declared `#[cfg(loom)] mod name;` are compiled
    // out of normal builds; the files they own are parsed separately and
    // cannot see the parent's attribute, so mark their fns off here.
    let mut off_mods: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ws.crates.len()];
    for file in &ws.files {
        collect_cfg_off_mod_decls(&file.lexed.masked, &mut off_mods[file.crate_idx]);
    }
    for f in &mut ws.fns {
        let ci = ws.files[f.file].crate_idx;
        if f.module.iter().skip(1).any(|m| off_mods[ci].contains(m)) {
            f.cfg_off = true;
        }
    }
    Ok(ws)
}

/// Collect names from `#[cfg(loom)] mod name;` declarations (semicolon
/// form — the brace form is handled by the parser's attribute marking).
fn collect_cfg_off_mod_decls(masked: &str, out: &mut BTreeSet<String>) {
    let mut off_pending = false;
    for line in masked.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("#[") {
            if t.starts_with("#[cfg(") && t.contains("loom") && !t.contains("not(loom)") {
                off_pending = true;
            }
            continue;
        }
        if off_pending {
            let rest = t.strip_prefix("pub ").unwrap_or(t);
            if let Some(name) = rest
                .strip_prefix("mod ")
                .and_then(|n| n.trim().strip_suffix(';'))
            {
                out.insert(name.trim().to_string());
            }
        }
        off_pending = false;
    }
}

/// Transitive closure of declared dependency edges, self-inclusive.
fn dep_closure(crates: &[CrateInfo]) -> Vec<BTreeSet<usize>> {
    let by_name: BTreeMap<&str, usize> = crates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    let direct: Vec<Vec<usize>> = crates
        .iter()
        .map(|c| {
            c.deps
                .iter()
                .filter_map(|d| by_name.get(d.as_str()).copied())
                .collect()
        })
        .collect();
    (0..crates.len())
        .map(|start| {
            let mut seen = BTreeSet::new();
            let mut stack = vec![start];
            while let Some(c) = stack.pop() {
                if seen.insert(c) {
                    stack.extend(direct[c].iter().copied());
                }
            }
            seen
        })
        .collect()
}

/// Record identifiers declared `name: f32` / `name: f64` (with optional
/// `&` / `mut` between the colon and the type).
fn collect_float_idents(masked: &str, out: &mut BTreeSet<String>) {
    for line in masked.lines() {
        let b = line.as_bytes();
        for (i, &c) in b.iter().enumerate() {
            if c != b':' {
                continue;
            }
            // Single `:` only — `::` is a path separator.
            if b.get(i + 1) == Some(&b':') || (i > 0 && b[i - 1] == b':') {
                continue;
            }
            let mut tail = line[i + 1..].trim_start();
            loop {
                let t = tail
                    .strip_prefix('&')
                    .or_else(|| tail.strip_prefix("mut "))
                    .or_else(|| tail.strip_prefix("'_ "));
                match t {
                    Some(t) => tail = t.trim_start(),
                    None => break,
                }
            }
            let is_float = ["f32", "f64"].iter().any(|ty| {
                tail.strip_prefix(ty).is_some_and(|rest| {
                    !rest.starts_with(|ch: char| ch.is_ascii_alphanumeric() || ch == '_')
                })
            });
            if !is_float {
                continue;
            }
            let head = line[..i].trim_end();
            let start = head
                .rfind(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .map(|p| p + 1)
                .unwrap_or(0);
            if start < head.len() && !head[start..].starts_with(|ch: char| ch.is_ascii_digit()) {
                out.insert(head[start..].to_string());
            }
        }
    }
}

/// Owning-container type heads: declaring `name: Vec<..>` (etc.) or
/// initializing `let name = vec![..]` marks `name` as allocation
/// evidence for receiver-gated methods.
const OWNING_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

const OWNING_INITS: &[&str] = &[
    "vec!",
    "format!",
    "Vec::",
    "VecDeque::",
    "String::",
    "Box::new",
    "HashMap::",
    "HashSet::",
    "BTreeMap::",
    "BTreeSet::",
    "BinaryHeap::",
];

/// Record identifiers with owning-container evidence: `name: Vec<..>`
/// declarations (fields, params, let annotations; optional `&` / `mut`
/// skipped — a `&Vec` still owns its heap buffer through the reference)
/// and `let [mut] name = <allocating constructor>` initializers.
fn collect_owning_idents(masked: &str, out: &mut BTreeSet<String>) {
    for line in masked.lines() {
        let b = line.as_bytes();
        for (i, &c) in b.iter().enumerate() {
            if c != b':' {
                continue;
            }
            if b.get(i + 1) == Some(&b':') || (i > 0 && b[i - 1] == b':') {
                continue;
            }
            let mut tail = line[i + 1..].trim_start();
            loop {
                let t = tail
                    .strip_prefix('&')
                    .or_else(|| tail.strip_prefix("mut "))
                    .or_else(|| tail.strip_prefix("'_ "));
                match t {
                    Some(t) => tail = t.trim_start(),
                    None => break,
                }
            }
            let ty_end = tail
                .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .unwrap_or(tail.len());
            if !OWNING_TYPES.contains(&&tail[..ty_end]) {
                continue;
            }
            let head = line[..i].trim_end();
            let start = head
                .rfind(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                .map(|p| p + 1)
                .unwrap_or(0);
            if start < head.len() && !head[start..].starts_with(|ch: char| ch.is_ascii_digit()) {
                out.insert(head[start..].to_string());
            }
        }
        // `let [mut] name = vec![..];` and friends.
        let Some(p) = line.find("let ") else { continue };
        if p > 0 && (b[p - 1].is_ascii_alphanumeric() || b[p - 1] == b'_') {
            continue;
        }
        let rest = line[p + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name_end = rest
            .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
            .unwrap_or(rest.len());
        if name_end == 0 {
            continue;
        }
        let after = rest[name_end..].trim_start();
        let Some(init) = after.strip_prefix('=') else {
            continue;
        };
        let init = init.trim_start();
        if OWNING_INITS.iter().any(|n| init.starts_with(n)) {
            out.insert(rest[..name_end].to_string());
        }
    }
}

fn read_crate(root: &Path, dir: &Path) -> Result<CrateInfo, String> {
    let manifest = dir.join("Cargo.toml");
    let text = std::fs::read_to_string(&manifest)
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let (name, deps) = parse_manifest(&text);
    let name = name.ok_or_else(|| format!("{}: no package name", manifest.display()))?;
    Ok(CrateInfo {
        ident: name.replace('-', "_"),
        name,
        dir: dir.strip_prefix(root).unwrap_or(dir).to_path_buf(),
        deps,
    })
}

/// Extract the package name and `[dependencies]` keys from a manifest.
/// Dev-dependencies are ignored: the layering contract covers the
/// shipped dependency DAG, not test scaffolding.
fn parse_manifest(text: &str) -> (Option<String>, Vec<String>) {
    let mut section = String::new();
    let mut name = None;
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        if section == "package" && key == "name" {
            name = Some(value.trim().trim_matches('"').to_string());
        }
        if section == "dependencies" {
            // `ct-obs = { path = ".." }` or `serde.workspace = true`.
            let dep = key.split('.').next().unwrap_or(key).trim();
            deps.push(dep.to_string());
        }
    }
    (name, deps)
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The thread-portable result of the pure per-file stage: everything
/// derived from one source file with no access to shared tables.
struct ParsedFile {
    crate_idx: usize,
    rel: PathBuf,
    lexed: lexer::Lexed,
    test_lines: Vec<bool>,
    items: Vec<Item>,
    module_chain: Vec<String>,
}

fn parse_file(
    root: &Path,
    crates: &[CrateInfo],
    crate_idx: usize,
    path: &Path,
) -> Result<ParsedFile, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let lexed = lexer::lex(&src);
    let test_lines = lexer::test_lines(&lexed.masked);
    let items = parser::parse(&lexed.masked);
    let module = file_module(&root.join(&crates[crate_idx].dir), path);
    let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let mut module_chain = vec![crates[crate_idx].ident.clone()];
    module_chain.extend(module);
    Ok(ParsedFile {
        crate_idx,
        rel,
        lexed,
        test_lines,
        items,
        module_chain,
    })
}

/// Fold one parsed file into the workspace tables (sequential stage).
fn integrate_file(
    ws: &mut Workspace,
    parsed: ParsedFile,
    const_values: &mut BTreeMap<String, Vec<Option<u128>>>,
) {
    let file_idx = ws.files.len();
    let mut file = FileInfo {
        crate_idx: parsed.crate_idx,
        rel: parsed.rel,
        lexed: parsed.lexed,
        test_lines: parsed.test_lines,
        imports: Vec::new(),
        globs: Vec::new(),
    };
    flatten(
        ws,
        &mut file,
        file_idx,
        &parsed.items,
        &parsed.module_chain,
        None,
        const_values,
    );
    ws.files.push(file);
}

/// Module segments for a file within its crate (`src/foo/bar.rs` →
/// `["foo", "bar"]`; `src/lib.rs` → `[]`; flat-layout `quickstart.rs`
/// → `["quickstart"]`).
fn file_module(crate_dir: &Path, path: &Path) -> Vec<String> {
    let rel = path.strip_prefix(crate_dir).unwrap_or(path);
    let rel = rel.strip_prefix("src").unwrap_or(rel);
    let mut segs: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    if let Some(last) = segs.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
        if last == "lib" || last == "main" || last == "mod" {
            segs.pop();
        }
    }
    segs
}

#[allow(clippy::too_many_arguments)]
fn flatten(
    ws: &mut Workspace,
    file: &mut FileInfo,
    file_idx: usize,
    items: &[Item],
    module: &[String],
    self_type: Option<&str>,
    const_values: &mut BTreeMap<String, Vec<Option<u128>>>,
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => push_fn(ws, file_idx, f, module, self_type),
            ItemKind::Mod { name, items } => {
                let mut chain = module.to_vec();
                chain.push(name.clone());
                flatten(ws, file, file_idx, items, &chain, None, const_values);
            }
            ItemKind::Impl { type_name, items }
            | ItemKind::Trait {
                name: type_name,
                items,
            } => {
                flatten(
                    ws,
                    file,
                    file_idx,
                    items,
                    module,
                    Some(type_name),
                    const_values,
                );
            }
            ItemKind::Use { bindings, globs } => {
                for b in bindings {
                    if let Some(abs) = absolutize(&b.path, module) {
                        file.imports.push((b.name.clone(), abs));
                    }
                }
                for g in globs {
                    if let Some(abs) = absolutize(g, module) {
                        file.globs.push(abs);
                    }
                }
            }
            ItemKind::Const { name, value } => {
                const_values.entry(name.clone()).or_default().push(*value);
            }
        }
    }
}

fn push_fn(
    ws: &mut Workspace,
    file_idx: usize,
    f: &FnDecl,
    module: &[String],
    self_type: Option<&str>,
) {
    let mut qual = module.join("::");
    if let Some(t) = self_type {
        qual.push_str("::");
        qual.push_str(t);
    }
    qual.push_str("::");
    qual.push_str(&f.name);
    ws.fns.push(FnInfo {
        file: file_idx,
        qual,
        name: f.name.clone(),
        module: module.to_vec(),
        self_type: self_type.map(str::to_string),
        arity: f.arity,
        has_self: f.has_self,
        body: f.body,
        is_test: f.is_test,
        cfg_off: f.cfg_off,
    });
}

/// Resolve `crate` / `self` / `super` path heads against the module the
/// `use` appears in. Returns `None` for degenerate paths.
fn absolutize(path: &[String], module: &[String]) -> Option<Vec<String>> {
    let mut out: Vec<String> = Vec::new();
    let mut segs = path.iter();
    match path.first().map(String::as_str) {
        Some("crate") => {
            out.push(module.first()?.clone());
            segs.next();
        }
        Some("self") => {
            out.extend(module.iter().cloned());
            segs.next();
        }
        Some("super") => {
            let mut base = module.to_vec();
            while segs.clone().next().map(String::as_str) == Some("super") {
                base.pop();
                segs.next();
            }
            if base.is_empty() {
                return None;
            }
            out.extend(base);
        }
        Some(_) => {}
        None => return None,
    }
    out.extend(segs.cloned());
    (!out.is_empty()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_extracts_name_and_runtime_deps() {
        let text = "[package]\nname = \"ct-bp\"\n\n[dependencies]\n\
                    ct-core = { workspace = true }\nct-obs.workspace = true\n\
                    serde = { version = \"1\" }\n\n[dev-dependencies]\nproptest = \"1\"\n";
        let (name, deps) = parse_manifest(text);
        assert_eq!(name.as_deref(), Some("ct-bp"));
        assert_eq!(deps, vec!["ct-core", "ct-obs", "serde"]);
    }

    #[test]
    fn file_module_paths() {
        let d = Path::new("/w/crates/ct-bp");
        assert!(file_module(d, Path::new("/w/crates/ct-bp/src/lib.rs")).is_empty());
        assert_eq!(
            file_module(d, Path::new("/w/crates/ct-bp/src/tiled.rs")),
            vec!["tiled"]
        );
        assert_eq!(
            file_module(d, Path::new("/w/crates/ct-bp/src/a/mod.rs")),
            vec!["a"]
        );
        assert_eq!(
            file_module(d, Path::new("/w/crates/ct-bp/src/bin/gups.rs")),
            vec!["bin", "gups"]
        );
    }

    #[test]
    fn owning_idents_from_types_and_initializers() {
        let mut got = BTreeSet::new();
        collect_owning_idents(
            "struct S { queue: VecDeque<u64>, name: String, n: usize }\n\
             fn f(buf: &mut Vec<f32>, x: u32) {\n\
                 let scratch = vec![0.0; 8];\n\
                 let label = format!(\"{x}\");\n\
                 let keep = x + 1;\n\
             }\n",
            &mut got,
        );
        for want in ["queue", "name", "buf", "scratch", "label"] {
            assert!(got.contains(want), "missing {want}: {got:?}");
        }
        assert!(!got.contains("n"), "{got:?}");
        assert!(!got.contains("x"), "{got:?}");
        assert!(!got.contains("keep"), "{got:?}");
    }

    #[test]
    fn absolutize_resolves_crate_self_super() {
        let m: Vec<String> = vec!["ct_bp".into(), "tiled".into()];
        assert_eq!(
            absolutize(&["crate".into(), "pair".into(), "SlabPair".into()], &m),
            Some(vec!["ct_bp".into(), "pair".into(), "SlabPair".into()])
        );
        assert_eq!(
            absolutize(&["super".into(), "warp".into()], &m),
            Some(vec!["ct_bp".into(), "warp".into()])
        );
        assert_eq!(
            absolutize(&["self".into(), "helper".into()], &m),
            Some(vec!["ct_bp".into(), "tiled".into(), "helper".into()])
        );
        assert_eq!(
            absolutize(&["ct_core".into(), "Volume".into()], &m),
            Some(vec!["ct_core".into(), "Volume".into()])
        );
    }
}
