//! Hand-rolled JSON for `cargo xtask analyze --format json`.
//!
//! Same zero-dependency idiom as `ct_obs::jsonw` (xtask is a standalone
//! workspace and depends on nothing, so it carries its own copy): the
//! schema is small and versioned, and the writer emits fields in call
//! order with ASCII-only string escaping.
//!
//! Document shape, schema `ifdk-analyze/v2` (v1 plus per-pass stats and
//! the elidable checked-gather report from the interval analysis):
//!
//! ```json
//! {
//!   "schema": "ifdk-analyze/v2",
//!   "subcommand": "analyze",
//!   "clean": false,
//!   "count": 2,
//!   "findings": [
//!     {"path": "crates/x/src/a.rs", "line": 7, "rule": "lock-order",
//!      "message": "..."}
//!   ],
//!   "passes": [
//!     {"name": "index-bounds", "findings": 1, "wall_ms": 3.2,
//!      "stats": [{"name": "cfg_blocks", "value": 412}]}
//!   ],
//!   "elidable_gathers": 1,
//!   "gathers": [
//!     {"path": "crates/x/src/a.rs", "line": 9, "fn": "ct_bp::warp::row",
//!      "what": "`tex.get(i)`", "loop_depth": 2}
//!   ]
//! }
//! ```
//!
//! Errors (exit 3) become `{"schema": "ifdk-analyze/v2", "error": "..."}`
//! so CI consumers always parse one object per run.

use crate::passes::{AnalyzeReport, Gather, PassReport};
use crate::rules::Violation;
use std::fmt::Write as _;

pub const SCHEMA: &str = "ifdk-analyze/v2";

/// Render a finished analyze run.
pub fn findings_doc(what: &str, report: &AnalyzeReport) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "{}:{},{}:{},{}:{},{}:{},{}:[",
        str_lit("schema"),
        str_lit(SCHEMA),
        str_lit("subcommand"),
        str_lit(what),
        str_lit("clean"),
        report.violations.is_empty(),
        str_lit("count"),
        report.violations.len(),
        str_lit("findings"),
    );
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_finding(&mut out, v);
    }
    let _ = write!(out, "],{}:[", str_lit("passes"));
    for (i, p) in report.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_pass(&mut out, p);
    }
    let _ = write!(
        out,
        "],{}:{},{}:[",
        str_lit("elidable_gathers"),
        report.gathers.len(),
        str_lit("gathers"),
    );
    for (i, g) in report.gathers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_gather(&mut out, g);
    }
    out.push_str("]}");
    out.push('\n');
    out
}

fn write_finding(out: &mut String, v: &Violation) {
    let _ = write!(
        out,
        "{{{}:{},{}:{},{}:{},{}:{}}}",
        str_lit("path"),
        str_lit(&v.path.to_string_lossy().replace('\\', "/")),
        str_lit("line"),
        v.line,
        str_lit("rule"),
        str_lit(v.rule),
        str_lit("message"),
        str_lit(&v.msg),
    );
}

fn write_pass(out: &mut String, p: &PassReport) {
    let _ = write!(
        out,
        "{{{}:{},{}:{},{}:{},{}:[",
        str_lit("name"),
        str_lit(p.name),
        str_lit("findings"),
        p.findings,
        str_lit("wall_ms"),
        num_f64(p.wall_ms),
        str_lit("stats"),
    );
    for (i, (name, value)) in p.stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{{}:{},{}:{}}}",
            str_lit("name"),
            str_lit(name),
            str_lit("value"),
            value,
        );
    }
    out.push_str("]}");
}

fn write_gather(out: &mut String, g: &Gather) {
    let _ = write!(
        out,
        "{{{}:{},{}:{},{}:{},{}:{},{}:{}}}",
        str_lit("path"),
        str_lit(&g.path.to_string_lossy().replace('\\', "/")),
        str_lit("line"),
        g.line,
        str_lit("fn"),
        str_lit(&g.qual),
        str_lit("what"),
        str_lit(&g.what),
        str_lit("loop_depth"),
        g.depth,
    );
}

/// Render a usage / internal error (the exit-3 path).
pub fn error_doc(message: &str) -> String {
    format!(
        "{{{}:{},{}:{}}}\n",
        str_lit("schema"),
        str_lit(SCHEMA),
        str_lit("error"),
        str_lit(message),
    )
}

/// JSON number, non-finite clamped to 0 (ct_obs::jsonw semantics).
fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// JSON string literal: quotes, backslashes and control bytes escaped,
/// non-ASCII as `\uXXXX` so consumers never see raw multibyte output.
pub(crate) fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) > 0x7e => {
                let mut buf = [0u16; 2];
                for unit in c.encode_utf16(&mut buf) {
                    let _ = write!(out, "\\u{:04x}", unit);
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn empty_report() -> AnalyzeReport {
        AnalyzeReport {
            violations: Vec::new(),
            passes: Vec::new(),
            gathers: Vec::new(),
        }
    }

    #[test]
    fn clean_run_renders_empty_findings() {
        let doc = findings_doc("analyze", &empty_report());
        assert_eq!(
            doc,
            "{\"schema\":\"ifdk-analyze/v2\",\"subcommand\":\"analyze\",\
             \"clean\":true,\"count\":0,\"findings\":[],\"passes\":[],\
             \"elidable_gathers\":0,\"gathers\":[]}\n"
        );
    }

    #[test]
    fn findings_and_escapes_round_trip() {
        let v = Violation {
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            rule: "lock-order",
            msg: "cycle \"a\" -> b\nsee §6c".to_string(),
        };
        let mut report = empty_report();
        report.violations.push(v);
        let doc = findings_doc("analyze", &report);
        assert!(doc.contains("\"clean\":false,\"count\":1"), "{doc}");
        assert!(
            doc.contains("\"path\":\"crates/x/src/a.rs\",\"line\":7"),
            "{doc}"
        );
        assert!(doc.contains("\\\"a\\\" -> b\\n"), "{doc}");
        assert!(doc.contains("\\u00a7"), "non-ASCII must be escaped: {doc}");
    }

    #[test]
    fn passes_and_gathers_are_emitted() {
        let mut report = empty_report();
        report.passes.push(PassReport {
            name: "index-bounds",
            findings: 1,
            wall_ms: 3.25,
            stats: vec![("cfg_blocks".to_string(), 412)],
        });
        report.gathers.push(Gather {
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 9,
            qual: "ct_bp::warp::row".to_string(),
            what: "`tex.get(i)`".to_string(),
            depth: 2,
        });
        let doc = findings_doc("analyze", &report);
        assert!(
            doc.contains(
                "{\"name\":\"index-bounds\",\"findings\":1,\"wall_ms\":3.25,\
                 \"stats\":[{\"name\":\"cfg_blocks\",\"value\":412}]}"
            ),
            "{doc}"
        );
        assert!(doc.contains("\"elidable_gathers\":1"), "{doc}");
        assert!(
            doc.contains(
                "{\"path\":\"crates/x/src/a.rs\",\"line\":9,\"fn\":\"ct_bp::warp::row\",\
                 \"what\":\"`tex.get(i)`\",\"loop_depth\":2}"
            ),
            "{doc}"
        );
    }

    #[test]
    fn error_doc_is_one_object() {
        let doc = error_doc("read ci/analyze.conf: not found");
        assert!(
            doc.starts_with("{\"schema\":\"ifdk-analyze/v2\",\"error\":"),
            "{doc}"
        );
    }
}
