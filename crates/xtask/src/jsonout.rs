//! Hand-rolled JSON for `cargo xtask analyze --format json`.
//!
//! Same zero-dependency idiom as `ct_obs::jsonw` (xtask is a standalone
//! workspace and depends on nothing, so it carries its own copy): the
//! schema is small and versioned, and the writer emits fields in call
//! order with ASCII-only string escaping.
//!
//! Document shape, schema `ifdk-analyze/v1`:
//!
//! ```json
//! {
//!   "schema": "ifdk-analyze/v1",
//!   "subcommand": "analyze",
//!   "clean": false,
//!   "count": 2,
//!   "findings": [
//!     {"path": "crates/x/src/a.rs", "line": 7, "rule": "lock-order",
//!      "message": "..."}
//!   ]
//! }
//! ```
//!
//! Errors (exit 3) become `{"schema": "ifdk-analyze/v1", "error": "..."}`
//! so CI consumers always parse one object per run.

use crate::rules::Violation;
use std::fmt::Write as _;

pub const SCHEMA: &str = "ifdk-analyze/v1";

/// Render a finished analyze run.
pub fn findings_doc(what: &str, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "{}:{},{}:{},{}:{},{}:{},{}:[",
        str_lit("schema"),
        str_lit(SCHEMA),
        str_lit("subcommand"),
        str_lit(what),
        str_lit("clean"),
        violations.is_empty(),
        str_lit("count"),
        violations.len(),
        str_lit("findings"),
    );
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{{}:{},{}:{},{}:{},{}:{}}}",
            str_lit("path"),
            str_lit(&v.path.to_string_lossy().replace('\\', "/")),
            str_lit("line"),
            v.line,
            str_lit("rule"),
            str_lit(v.rule),
            str_lit("message"),
            str_lit(&v.msg),
        );
    }
    out.push_str("]}");
    out.push('\n');
    out
}

/// Render a usage / internal error (the exit-3 path).
pub fn error_doc(message: &str) -> String {
    format!(
        "{{{}:{},{}:{}}}\n",
        str_lit("schema"),
        str_lit(SCHEMA),
        str_lit("error"),
        str_lit(message),
    )
}

/// JSON string literal: quotes, backslashes and control bytes escaped,
/// non-ASCII as `\uXXXX` so consumers never see raw multibyte output.
fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) > 0x7e => {
                let mut buf = [0u16; 2];
                for unit in c.encode_utf16(&mut buf) {
                    let _ = write!(out, "\\u{:04x}", unit);
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn clean_run_renders_empty_findings() {
        let doc = findings_doc("analyze", &[]);
        assert_eq!(
            doc,
            "{\"schema\":\"ifdk-analyze/v1\",\"subcommand\":\"analyze\",\
             \"clean\":true,\"count\":0,\"findings\":[]}\n"
        );
    }

    #[test]
    fn findings_and_escapes_round_trip() {
        let v = Violation {
            path: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            rule: "lock-order",
            msg: "cycle \"a\" -> b\nsee §6c".to_string(),
        };
        let doc = findings_doc("analyze", &[v]);
        assert!(doc.contains("\"clean\":false,\"count\":1"), "{doc}");
        assert!(
            doc.contains("\"path\":\"crates/x/src/a.rs\",\"line\":7"),
            "{doc}"
        );
        assert!(doc.contains("\\\"a\\\" -> b\\n"), "{doc}");
        assert!(doc.contains("\\u00a7"), "non-ASCII must be escaped: {doc}");
    }

    #[test]
    fn error_doc_is_one_object() {
        let doc = error_doc("read ci/analyze.conf: not found");
        assert!(
            doc.starts_with("{\"schema\":\"ifdk-analyze/v1\",\"error\":"),
            "{doc}"
        );
    }
}
