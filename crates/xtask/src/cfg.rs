//! Control-flow graph lowering for the dataflow passes.
//!
//! [`lower`] turns one function body span (byte range into the masked
//! text, braces included) into a small CFG: basic blocks holding
//! statement spans, edges carrying optional branch conditions (the
//! condition's byte span plus a polarity), and loop-head blocks with
//! back-edges. The lowering is structural — `if`/`else` chains,
//! `while`/`while let`, `loop`, `for`, `match` (arm patterns become
//! edge conditions, which is how the float pass sees the `LaneMode::Fma`
//! gate), `return`/`break`/`continue`, `?` early exits, and
//! control-flow initializers (`let r = loop { .. }`, `let v = if ..`)
//! whose bound name surfaces as an opaque binding in the join block.
//!
//! Guarantees the passes rely on:
//!
//! * every statement byte span lies inside the body span and spans
//!   never overlap block-to-block;
//! * back-edges only target blocks marked `loop_head`;
//! * `loop_depth` counts enclosing loops and `encl_heads` names their
//!   head blocks innermost-last, so a pass can walk from an access to
//!   the `for`-headers that scope it.
//!
//! Labeled `break`/`continue` jump to the *innermost* loop — a
//! documented over-approximation (DESIGN §6d): states merge into an
//! inner join instead of the outer one, which only widens what the
//! passes believe, never narrows it.

/// One lowered function body.
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Entry block index (always 0).
    pub entry: usize,
    /// Synthetic exit block (no statements, no out-edges). Forward
    /// passes don't read it, but a backward pass would seed here.
    #[allow(dead_code)]
    pub exit: usize,
}

pub struct Block {
    pub stmts: Vec<Stmt>,
    pub edges: Vec<Edge>,
    /// True for `while`/`loop`/`for` header blocks (widening points).
    pub loop_head: bool,
    /// Number of enclosing loops (the head block itself counts).
    pub loop_depth: usize,
    /// Head-block indices of the enclosing loops, innermost last.
    pub encl_heads: Vec<usize>,
}

pub struct Stmt {
    /// Byte span in the masked text.
    pub span: (usize, usize),
    pub kind: StmtKind,
}

#[derive(PartialEq)]
pub enum StmtKind {
    Plain,
    /// `for PAT in ITER` header: the pattern and iterator expression.
    ForHead {
        pat: (usize, usize),
        iter: (usize, usize),
    },
    /// A binding whose initializer was a control-flow expression
    /// (`let r = loop { .. }`): the value is opaque to the domain.
    BindOpaque {
        name: (usize, usize),
    },
}

pub struct Edge {
    pub to: usize,
    pub cond: Option<Cond>,
}

/// A branch condition: the guarding expression's byte span (for `match`
/// arms, the arm pattern including any `if` guard) and whether this
/// edge is taken when it holds (`true`) or fails (`false`).
pub struct Cond {
    pub span: (usize, usize),
    pub polarity: bool,
}

/// Lower the body at `body` (a `{ .. }` span in `masked`).
pub fn lower(masked: &str, body: (usize, usize)) -> Cfg {
    let b = masked.as_bytes();
    let (b0, b1) = body;
    let b1 = b1.min(b.len());
    // The span includes the outer braces; lower their interior.
    let (i0, i1) = if b0 < b1 && b[b0] == b'{' {
        (b0 + 1, b1.saturating_sub(1).max(b0 + 1))
    } else {
        (b0, b1)
    };
    let mut lw = Lower {
        b,
        blocks: Vec::new(),
        exit: 0,
        loops: Vec::new(),
    };
    let entry = lw.new_block();
    lw.exit = lw.new_block();
    let out = lw.lower_block(i0, i1, entry);
    let exit = lw.exit;
    lw.edge(out, exit, None);
    Cfg {
        blocks: lw.blocks,
        entry,
        exit,
    }
}

struct LoopCtx {
    head: usize,
    after: usize,
}

struct Lower<'a> {
    b: &'a [u8],
    blocks: Vec<Block>,
    exit: usize,
    loops: Vec<LoopCtx>,
}

impl<'a> Lower<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block {
            stmts: Vec::new(),
            edges: Vec::new(),
            loop_head: false,
            loop_depth: self.loops.len(),
            encl_heads: self.loops.iter().map(|l| l.head).collect(),
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, cond: Option<Cond>) {
        self.blocks[from].edges.push(Edge { to, cond });
    }

    /// Lower the statements in `i0..i1` starting in `cur`; returns the
    /// block control falls out of.
    fn lower_block(&mut self, i0: usize, i1: usize, mut cur: usize) -> usize {
        let mut i = i0;
        loop {
            i = self.skip_ws(i, i1);
            if i >= i1 {
                return cur;
            }
            // Loop labels (`'outer: loop {`): skip to the keyword.
            if self.b[i] == b'\'' {
                let mut j = i + 1;
                while j < i1 && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                    j += 1;
                }
                if j < i1 && self.b[j] == b':' {
                    i = j + 1;
                    continue;
                }
            }
            if self.b[i] == b'{' {
                let close = self.match_brace(i, i1);
                cur = self.lower_block(i + 1, close, cur);
                i = close + 1;
                continue;
            }
            if self.b[i] == b'}' || self.b[i] == b';' {
                i += 1;
                continue;
            }
            let word = self.word_at(i);
            match word {
                "if" => (i, cur) = self.lower_if(i + 2, i1, cur),
                "while" => (i, cur) = self.lower_while(i + 5, i1, cur),
                "loop" => (i, cur) = self.lower_loop(i + 4, i1, cur),
                "for" => (i, cur) = self.lower_for(i + 3, i1, cur),
                "match" => (i, cur) = self.lower_match(i + 5, i1, cur),
                "return" => {
                    let end = self.stmt_end(i, i1);
                    self.push_stmt(cur, (i, end), StmtKind::Plain);
                    let exit = self.exit;
                    self.edge(cur, exit, None);
                    cur = self.new_block();
                    i = end + 1;
                }
                "break" => {
                    let end = self.stmt_end(i, i1);
                    if let Some(l) = self.loops.last() {
                        let after = l.after;
                        self.edge(cur, after, None);
                    } else {
                        let exit = self.exit;
                        self.edge(cur, exit, None);
                    }
                    cur = self.new_block();
                    i = end + 1;
                }
                "continue" => {
                    let end = self.stmt_end(i, i1);
                    if let Some(l) = self.loops.last() {
                        let head = l.head;
                        self.edge(cur, head, None);
                    }
                    cur = self.new_block();
                    i = end + 1;
                }
                "let" => {
                    if let Some((name, kw_at, kw)) = self.ctrl_initializer(i, i1) {
                        // `let r = loop { .. };` — lower the construct,
                        // then bind `r` opaquely in the continuation.
                        let (ni, out) = match kw {
                            "if" => self.lower_if(kw_at + 2, i1, cur),
                            "match" => self.lower_match(kw_at + 5, i1, cur),
                            _ => self.lower_loop(kw_at + 4, i1, cur),
                        };
                        cur = out;
                        self.push_stmt(cur, name, StmtKind::BindOpaque { name });
                        i = ni;
                    } else {
                        let end = self.stmt_end(i, i1);
                        self.push_stmt(cur, (i, end), StmtKind::Plain);
                        if self.span_has_question(i, end) {
                            let exit = self.exit;
                            self.edge(cur, exit, None);
                        }
                        i = end + 1;
                    }
                }
                _ => {
                    let end = self.stmt_end(i, i1);
                    self.push_stmt(cur, (i, end), StmtKind::Plain);
                    if self.span_has_question(i, end) {
                        let exit = self.exit;
                        self.edge(cur, exit, None);
                    }
                    i = end + 1;
                }
            }
        }
    }

    /// `i` points just past the `if` keyword. Returns (next index,
    /// join block).
    fn lower_if(&mut self, i: usize, i1: usize, cur: usize) -> (usize, usize) {
        let open = self.find_body_open(i, i1);
        let cond = (i, open);
        let close = self.match_brace(open, i1);
        let then_entry = self.new_block();
        self.edge(
            cur,
            then_entry,
            Some(Cond {
                span: cond,
                polarity: true,
            }),
        );
        let then_out = self.lower_block(open + 1, close, then_entry);
        let join = self.new_block();
        self.edge(then_out, join, None);

        let mut j = self.skip_ws(close + 1, i1);
        if self.word_at(j) == "else" {
            j = self.skip_ws(j + 4, i1);
            if self.word_at(j) == "if" {
                let else_entry = self.new_block();
                self.edge(
                    cur,
                    else_entry,
                    Some(Cond {
                        span: cond,
                        polarity: false,
                    }),
                );
                let (nj, else_out) = self.lower_if(j + 2, i1, else_entry);
                self.edge(else_out, join, None);
                (nj, join)
            } else if j < i1 && self.b[j] == b'{' {
                let eclose = self.match_brace(j, i1);
                let else_entry = self.new_block();
                self.edge(
                    cur,
                    else_entry,
                    Some(Cond {
                        span: cond,
                        polarity: false,
                    }),
                );
                let else_out = self.lower_block(j + 1, eclose, else_entry);
                self.edge(else_out, join, None);
                (eclose + 1, join)
            } else {
                // Malformed else; fall through.
                self.edge(
                    cur,
                    join,
                    Some(Cond {
                        span: cond,
                        polarity: false,
                    }),
                );
                (j, join)
            }
        } else {
            self.edge(
                cur,
                join,
                Some(Cond {
                    span: cond,
                    polarity: false,
                }),
            );
            (close + 1, join)
        }
    }

    /// `i` points just past `while`. Covers `while let` too (the whole
    /// `let pat = expr` text becomes the condition span).
    fn lower_while(&mut self, i: usize, i1: usize, cur: usize) -> (usize, usize) {
        let open = self.find_body_open(i, i1);
        let cond = (i, open);
        let close = self.match_brace(open, i1);
        let head = self.new_block();
        self.blocks[head].loop_head = true;
        self.edge(cur, head, None);
        let after = self.new_block();
        self.edge(
            head,
            after,
            Some(Cond {
                span: cond,
                polarity: false,
            }),
        );
        self.loops.push(LoopCtx { head, after });
        let body_entry = self.new_block();
        self.edge(
            head,
            body_entry,
            Some(Cond {
                span: cond,
                polarity: true,
            }),
        );
        let body_out = self.lower_block(open + 1, close, body_entry);
        self.loops.pop();
        self.edge(body_out, head, None);
        (close + 1, after)
    }

    fn lower_loop(&mut self, i: usize, i1: usize, cur: usize) -> (usize, usize) {
        let open = self.find_body_open(i, i1);
        let close = self.match_brace(open, i1);
        let head = self.new_block();
        self.blocks[head].loop_head = true;
        self.edge(cur, head, None);
        let after = self.new_block();
        self.loops.push(LoopCtx { head, after });
        let body_entry = self.new_block();
        self.edge(head, body_entry, None);
        let body_out = self.lower_block(open + 1, close, body_entry);
        self.loops.pop();
        self.edge(body_out, head, None);
        (close + 1, after)
    }

    /// `i` points just past `for`. The header becomes a `ForHead`
    /// statement on the loop-head block.
    fn lower_for(&mut self, i: usize, i1: usize, cur: usize) -> (usize, usize) {
        let open = self.find_body_open(i, i1);
        let close = self.match_brace(open, i1);
        let in_at = self.find_word_top(i, open, "in");
        let (pat, iter) = match in_at {
            Some(p) => ((i, p), (p + 2, open)),
            None => ((i, i), (i, open)),
        };
        let head = self.new_block();
        self.blocks[head].loop_head = true;
        self.push_stmt(head, (i, open), StmtKind::ForHead { pat, iter });
        self.edge(cur, head, None);
        let after = self.new_block();
        self.edge(head, after, None);
        self.loops.push(LoopCtx { head, after });
        let body_entry = self.new_block();
        self.edge(head, body_entry, None);
        let body_out = self.lower_block(open + 1, close, body_entry);
        self.loops.pop();
        self.edge(body_out, head, None);
        (close + 1, after)
    }

    /// `i` points just past `match`. Arm patterns (with guards) become
    /// edge conditions; arm bodies are lowered; all arms join.
    fn lower_match(&mut self, i: usize, i1: usize, cur: usize) -> (usize, usize) {
        let open = self.find_body_open(i, i1);
        let close = self.match_brace(open, i1);
        // The scrutinee is evaluated once, in the branching block.
        self.push_stmt(cur, (i, open), StmtKind::Plain);
        let join = self.new_block();
        let mut j = open + 1;
        while j < close {
            j = self.skip_ws(j, close);
            while j < close && self.b[j] == b',' {
                j = self.skip_ws(j + 1, close);
            }
            if j >= close {
                break;
            }
            let Some(arrow) = self.find_arrow(j, close) else {
                break;
            };
            let pat = (j, arrow);
            let arm_entry = self.new_block();
            self.edge(
                cur,
                arm_entry,
                Some(Cond {
                    span: pat,
                    polarity: true,
                }),
            );
            let mut k = self.skip_ws(arrow + 2, close);
            let out = if k < close && self.b[k] == b'{' {
                let bclose = self.match_brace(k, close);
                let o = self.lower_block(k + 1, bclose, arm_entry);
                k = bclose + 1;
                o
            } else {
                let end = self.arm_expr_end(k, close);
                let o = match self.word_at(k) {
                    "return" => {
                        self.push_stmt(arm_entry, (k, end), StmtKind::Plain);
                        let exit = self.exit;
                        self.edge(arm_entry, exit, None);
                        self.new_block()
                    }
                    "break" => {
                        let t = self.loops.last().map(|l| l.after).unwrap_or(self.exit);
                        self.edge(arm_entry, t, None);
                        self.new_block()
                    }
                    "continue" => {
                        if let Some(l) = self.loops.last() {
                            let head = l.head;
                            self.edge(arm_entry, head, None);
                        }
                        self.new_block()
                    }
                    _ => {
                        self.push_stmt(arm_entry, (k, end), StmtKind::Plain);
                        arm_entry
                    }
                };
                k = end;
                o
            };
            self.edge(out, join, None);
            j = k;
        }
        let mut nj = close + 1;
        if nj < i1 && self.b.get(nj) == Some(&b';') {
            nj += 1;
        }
        (nj, join)
    }

    /// Does `let` at `i` initialize from a control-flow expression?
    /// Returns (name span, keyword offset, keyword).
    fn ctrl_initializer(
        &mut self,
        i: usize,
        i1: usize,
    ) -> Option<((usize, usize), usize, &'a str)> {
        let mut j = self.skip_ws(i + 3, i1);
        if self.word_at(j) == "mut" {
            j = self.skip_ws(j + 3, i1);
        }
        let n0 = j;
        while j < i1 && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
            j += 1;
        }
        if j == n0 {
            return None;
        }
        let name = (n0, j);
        // Skip an optional `: Type` annotation to the `=` at depth 0.
        let mut depth = 0i32;
        let mut k = j;
        while k < i1 {
            match self.b[k] {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'=' if depth <= 0 => {
                    // `==`, `=>`, `<=` etc. cannot appear here at depth 0
                    // before the initializer.
                    let kw_at = self.skip_ws(k + 1, i1);
                    let kw = self.word_at(kw_at);
                    return match kw {
                        "if" | "match" | "loop" => {
                            // Only when the construct is the whole
                            // initializer (its block ends the statement).
                            Some((name, kw_at, kw))
                        }
                        _ => None,
                    };
                }
                b';' => return None,
                _ => {}
            }
            k += 1;
        }
        None
    }

    fn push_stmt(&mut self, block: usize, span: (usize, usize), kind: StmtKind) {
        self.blocks[block].stmts.push(Stmt { span, kind });
    }

    fn skip_ws(&self, mut i: usize, i1: usize) -> usize {
        while i < i1 && self.b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }

    /// The identifier/keyword starting at `i` (empty if none).
    fn word_at(&self, i: usize) -> &'a str {
        let mut j = i;
        while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
            j += 1;
        }
        // Reject when the previous byte continues an identifier.
        if i > 0 && (self.b[i - 1].is_ascii_alphanumeric() || self.b[i - 1] == b'_') {
            return "";
        }
        std::str::from_utf8(&self.b[i..j]).unwrap_or("")
    }

    /// First `{` at paren/bracket depth 0 from `i` (Rust forbids bare
    /// struct literals in condition position, so this is the body).
    fn find_body_open(&self, mut i: usize, i1: usize) -> usize {
        let mut depth = 0i32;
        while i < i1 {
            match self.b[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth <= 0 => return i,
                _ => {}
            }
            i += 1;
        }
        i1.saturating_sub(1)
    }

    /// Matching `}` for the `{` at `open` (clamped to `i1`).
    fn match_brace(&self, open: usize, i1: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < i1 {
            match self.b[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i1.saturating_sub(1).max(open)
    }

    /// End of a plain statement: the `;` at brace/paren depth 0, or the
    /// end of the enclosing block (tail expression).
    fn stmt_end(&self, i: usize, i1: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < i1 {
            match self.b[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                b';' if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        i1
    }

    /// End of an expression-form match arm: `,` at depth 0 or `close`.
    fn arm_expr_end(&self, i: usize, close: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < close {
            match self.b[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b',' if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        close
    }

    /// `=>` at depth 0 (tracking all bracket kinds — struct patterns
    /// contain braces, or-patterns contain `|`).
    fn find_arrow(&self, i: usize, close: usize) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = i;
        while j + 1 < close {
            match self.b[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'=' if depth == 0 && self.b[j + 1] == b'>' => return Some(j),
                _ => {}
            }
            j += 1;
        }
        None
    }

    /// Word `w` at bracket depth 0 within `i..i1`, with word boundaries.
    fn find_word_top(&self, i: usize, i1: usize, w: &str) -> Option<usize> {
        let mut depth = 0i32;
        let mut j = i;
        let wb = w.as_bytes();
        while j < i1 {
            match self.b[j] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                c if depth == 0
                    && c == wb[0]
                    && self.b[j..].starts_with(wb)
                    && (j == 0
                        || !(self.b[j - 1].is_ascii_alphanumeric() || self.b[j - 1] == b'_'))
                    && self
                        .b
                        .get(j + wb.len())
                        .is_none_or(|c| !(c.is_ascii_alphanumeric() || *c == b'_')) =>
                {
                    return Some(j);
                }
                _ => {}
            }
            j += 1;
        }
        None
    }

    fn span_has_question(&self, i: usize, end: usize) -> bool {
        self.b[i..end.min(self.b.len())].contains(&b'?')
    }
}

/// Reverse post-order over the CFG (entry first); unreachable blocks
/// are appended at the end so every block gets a position.
pub fn rpo(cfg: &Cfg) -> Vec<usize> {
    let n = cfg.blocks.len();
    let mut seen = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit edge cursor.
    let mut stack: Vec<(usize, usize)> = vec![(cfg.entry, 0)];
    seen[cfg.entry] = true;
    while let Some(&mut (blk, ref mut cursor)) = stack.last_mut() {
        if let Some(e) = cfg.blocks[blk].edges.get(*cursor) {
            *cursor += 1;
            if !seen[e.to] {
                seen[e.to] = true;
                stack.push((e.to, 0));
            }
        } else {
            post.push(blk);
            stack.pop();
        }
    }
    post.reverse();
    for (i, s) in seen.iter().enumerate() {
        if !s {
            post.push(i);
        }
    }
    post
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_src(src: &str) -> (String, Cfg) {
        let lx = crate::lexer::lex(src);
        let items = crate::parser::parse(&lx.masked);
        for item in &items {
            if let crate::parser::ItemKind::Fn(f) = &item.kind {
                let body = f.body.expect("fn has a body");
                return (lx.masked.clone(), lower(&lx.masked, body));
            }
        }
        panic!("no fn in {src:?}");
    }

    fn stmt_texts(masked: &str, cfg: &Cfg) -> Vec<String> {
        let mut out = Vec::new();
        for blk in &cfg.blocks {
            for s in &blk.stmts {
                out.push(masked[s.span.0..s.span.1].trim().to_string());
            }
        }
        out
    }

    fn cond_texts(masked: &str, cfg: &Cfg) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        for blk in &cfg.blocks {
            for e in &blk.edges {
                if let Some(c) = &e.cond {
                    out.push((masked[c.span.0..c.span.1].trim().to_string(), c.polarity));
                }
            }
        }
        out
    }

    #[test]
    fn exit_block_is_a_sink() {
        let (_, cfg) = lower_src("fn f(x: u32) -> u32 { if x > 1 { a(); } x }");
        assert!(cfg.exit < cfg.blocks.len());
        assert!(
            cfg.blocks[cfg.exit].edges.is_empty(),
            "the exit block must have no successors"
        );
    }

    #[test]
    fn if_else_produces_both_polarities_and_a_join() {
        let (m, cfg) = lower_src("fn f(x: u32) -> u32 { if x > 1 { a(); } else { b(); } c() }");
        let conds = cond_texts(&m, &cfg);
        assert!(conds.contains(&("x > 1".to_string(), true)), "{conds:?}");
        assert!(conds.contains(&("x > 1".to_string(), false)), "{conds:?}");
        let stmts = stmt_texts(&m, &cfg);
        assert!(stmts.iter().any(|s| s.starts_with("a()")), "{stmts:?}");
        assert!(stmts.iter().any(|s| s.starts_with("b()")), "{stmts:?}");
        assert!(stmts.iter().any(|s| s.starts_with("c()")), "{stmts:?}");
    }

    #[test]
    fn else_if_chains_nest() {
        let (m, cfg) = lower_src("fn f(x: u32) { if x > 2 { a(); } else if x > 1 { b(); } }");
        let conds = cond_texts(&m, &cfg);
        assert!(conds.contains(&("x > 2".to_string(), false)), "{conds:?}");
        assert!(conds.contains(&("x > 1".to_string(), true)), "{conds:?}");
    }

    #[test]
    fn while_loop_has_head_backedge_and_exit_refinement() {
        let (m, cfg) = lower_src("fn f(n: usize) { let mut i = 0; while i < n { i += 1; } }");
        let head = cfg
            .blocks
            .iter()
            .position(|b| b.loop_head)
            .expect("loop head");
        // Back edge: some block at depth >= 1 targets the head.
        assert!(
            cfg.blocks.iter().enumerate().any(|(i, b)| i != head
                && b.loop_depth >= 1
                && b.edges.iter().any(|e| e.to == head)),
            "no back edge"
        );
        let conds = cond_texts(&m, &cfg);
        assert!(conds.contains(&("i < n".to_string(), true)), "{conds:?}");
        assert!(conds.contains(&("i < n".to_string(), false)), "{conds:?}");
    }

    #[test]
    fn for_loop_records_pattern_and_iter() {
        let (m, cfg) = lower_src("fn f(xs: &[f32]) { for i in 0..xs.len() { g(i); } }");
        let head = &cfg.blocks[cfg
            .blocks
            .iter()
            .position(|b| b.loop_head)
            .expect("loop head")];
        let fh = head
            .stmts
            .iter()
            .find_map(|s| match &s.kind {
                StmtKind::ForHead { pat, iter } => Some((*pat, *iter)),
                _ => None,
            })
            .expect("ForHead");
        assert_eq!(m[fh.0 .0..fh.0 .1].trim(), "i");
        assert_eq!(m[fh.1 .0..fh.1 .1].trim(), "0..xs.len()");
        // Body blocks carry loop depth and the enclosing head.
        assert!(cfg
            .blocks
            .iter()
            .any(|b| b.loop_depth == 1 && !b.encl_heads.is_empty()));
    }

    #[test]
    fn early_return_edges_to_exit() {
        let (m, cfg) = lower_src("fn f(x: u32) -> u32 { if x == 0 { return 7; } x }");
        // The block holding `return 7` must edge to exit.
        let mut found = false;
        for blk in &cfg.blocks {
            let has_ret = blk
                .stmts
                .iter()
                .any(|s| m[s.span.0..s.span.1].contains("return 7"));
            if has_ret {
                found = blk.edges.iter().any(|e| e.to == cfg.exit);
            }
        }
        assert!(found, "return block does not reach exit");
    }

    #[test]
    fn let_bound_loop_yields_opaque_binding_after_the_loop() {
        let (m, cfg) =
            lower_src("fn f() -> u32 { let r = loop { if done() { break 1; } }; r + 1 }");
        assert!(cfg.blocks.iter().any(|b| b.loop_head), "loop lowered");
        let bind = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .find_map(|s| match &s.kind {
                StmtKind::BindOpaque { name } => Some(m[name.0..name.1].to_string()),
                _ => None,
            });
        assert_eq!(bind.as_deref(), Some("r"));
    }

    #[test]
    fn match_arms_become_conditional_edges() {
        let (m, cfg) = lower_src(
            "fn f(m: Mode) -> f32 { match m { Mode::Strict => a(), Mode::Fma => { b() } } }",
        );
        let conds = cond_texts(&m, &cfg);
        assert!(
            conds.iter().any(|(c, p)| c == "Mode::Strict" && *p),
            "{conds:?}"
        );
        assert!(
            conds.iter().any(|(c, p)| c == "Mode::Fma" && *p),
            "{conds:?}"
        );
    }

    #[test]
    fn question_mark_adds_an_exit_edge() {
        let (_, cfg) = lower_src("fn f() -> Result<u32, E> { let x = g()?; Ok(x) }");
        let into_exit: usize = cfg
            .blocks
            .iter()
            .map(|b| b.edges.iter().filter(|e| e.to == cfg.exit).count())
            .sum();
        assert!(
            into_exit >= 2,
            "expected fallthrough + ? edge, got {into_exit}"
        );
    }

    #[test]
    fn rpo_visits_entry_first_and_every_block() {
        let (_, cfg) = lower_src("fn f(n: usize) { for i in 0..n { if i > 2 { a(); } } b(); }");
        let order = rpo(&cfg);
        assert_eq!(order[0], cfg.entry);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.blocks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn nested_loops_track_depth() {
        let (_, cfg) = lower_src("fn f(n: usize) { for i in 0..n { for j in 0..n { g(i, j); } } }");
        assert!(cfg.blocks.iter().any(|b| b.loop_depth == 2));
        assert_eq!(cfg.blocks.iter().filter(|b| b.loop_head).count(), 2);
    }
}
