//! Negative control: a result-producing crate whose export depends on
//! hash-map iteration order.

use std::collections::HashMap;

/// Seeded defect: the returned vector's order is whatever the hasher
/// felt like today.
pub fn export(counts: HashMap<String, u64>) -> Vec<(String, u64)> {
    counts.into_iter().collect()
}
