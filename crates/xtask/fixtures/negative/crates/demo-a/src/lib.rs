//! Negative control: a panic source reachable from the declared root
//! `demo_a::engine` through a cross-module call edge.

pub mod engine {
    /// The analyzer root. Does not panic itself; the defect is one call
    /// edge away, so catching it requires the call graph to work.
    pub fn run(values: &[u32]) -> u32 {
        crate::util::first(values)
    }
}

pub mod util {
    /// Seeded defect: an unexempted `unwrap` reachable from the root.
    pub fn first(values: &[u32]) -> u32 {
        values.first().copied().unwrap()
    }
}
