//! Negative control: float-determinism defects. `merge::total` folds a
//! float accumulator over hash-map iteration order, and `kernel::blend`
//! contracts with `mul_add` on a path from the conf-declared strict-mode
//! float root without ever consulting the FMA gate. A deliberately dead
//! escape rides along so the stale-allow audit stays honest.

pub mod merge {
    use std::collections::HashMap;

    /// Seeded defect: the summation walks the map in hash order, so the
    /// f32 total is not bit-stable from run to run.
    pub fn total(parts: HashMap<u64, f32>) -> f32 {
        let mut total: f32 = 0.0;
        for v in parts.values() {
            total += *v;
        }
        total
    }
}

pub mod kernel {
    /// Seeded defect: contraction without an FMA-gate check anywhere on
    /// the path from the `float-root`.
    pub fn blend(x: f32, w: f32, acc: f32) -> f32 {
        // analyze: allow(panic, reason = "stale on purpose: nothing here panics")
        x.mul_add(w, acc)
    }
}
