//! Negative control: a heap allocation reachable from the conf-declared
//! alloc root `demo_e::kernel::sweep`. The defect is one call edge away
//! from the root, so catching it requires allocation reachability to
//! traverse the call graph, not just scan the root body.

pub mod kernel {
    /// The alloc root: stands in for a hot inner sweep. Allocation-free
    /// itself; the seeded defect hides in the helper it calls.
    pub fn sweep(xs: &[f32]) -> f32 {
        crate::scratch::copy_out(xs).iter().sum()
    }
}

pub mod scratch {
    /// Seeded defect: an owned copy taken on the hot path.
    pub fn copy_out(xs: &[f32]) -> Vec<f32> {
        xs.to_vec()
    }
}
