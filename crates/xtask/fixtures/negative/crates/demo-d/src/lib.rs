//! Negative control: the three lock-discipline defect classes. `Pair`
//! seeds a lock-order cycle (`ab` acquires a then b, `ba` the reverse),
//! `publish` calls the conf-declared blocking `ring::push` under a live
//! guard, and `wait_once` parks on a condvar outside any loop.
//!
//! The stub sync types below are never compiled by CI; the analyzer only
//! needs the `.lock()` / `.wait(..)` call shapes to exercise its guard
//! tracking.

pub struct Mutex;
pub struct MutexGuard;
pub struct Condvar;

impl Mutex {
    pub fn lock(&self) -> MutexGuard {
        MutexGuard
    }
}

impl Condvar {
    pub fn wait(&self, _guard: &mut MutexGuard) {}
}

pub mod ring {
    /// Declared `blocking` in the fixture conf.
    pub fn push(x: u32) -> u32 {
        x
    }
}

pub struct Pair {
    a: Mutex,
    b: Mutex,
    m: Mutex,
    cv: Condvar,
}

impl Pair {
    /// Seeded defect half 1: acquires `a` then `b`.
    pub fn ab(&self) -> u32 {
        let _ga = self.a.lock();
        let _gb = self.b.lock();
        0
    }

    /// Seeded defect half 2: acquires `b` then `a`, closing the cycle.
    pub fn ba(&self) -> u32 {
        let _gb = self.b.lock();
        let _ga = self.a.lock();
        1
    }

    /// Seeded defect: a blocking call made while a guard is live.
    pub fn publish(&self) -> u32 {
        let _g = self.a.lock();
        crate::ring::push(1)
    }

    /// Seeded defect: `Condvar::wait` guarded by an `if`, not a loop, so
    /// a spurious wakeup proceeds with the predicate still false.
    pub fn wait_once(&self, ready: bool) {
        let mut g = self.m.lock();
        if !ready {
            self.cv.wait(&mut g);
        }
    }
}
