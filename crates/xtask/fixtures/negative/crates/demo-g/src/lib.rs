//! Negative control: an off-by-one direct slice index inside the hot
//! loop of the conf-declared bounds root `demo_g::kernel`. The sibling
//! gather keeps one provable `.get` access around so the elidable
//! checked-gather report always has a row to regress against.

pub mod kernel {
    /// Seeded defect: `i + 1` walks one past the end on the last trip.
    pub fn shifted_sum(xs: &[f32]) -> f32 {
        let n = xs.len();
        let mut acc = 0.0f32;
        for i in 0..n {
            acc += xs[i + 1];
        }
        acc
    }

    /// Proven checked gather: the interval analysis shows `i` stays in
    /// bounds, so the `.get` check is elidable (reported, not an error).
    pub fn gather(xs: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for i in 0..xs.len() {
            if let Some(v) = xs.get(i) {
                acc += v;
            }
        }
        acc
    }
}
