//! Negative control: this crate exists to close the layering cycle
//! declared in the fixture's `ci/analyze.conf` and `Cargo.toml`s.

/// Innocuous by itself — the defect lives in the dependency graph.
pub fn touch() -> u32 {
    7
}
