//! # ct-obs — unified observability for the distributed iFDK pipeline
//!
//! The paper's headline result is a *pipeline* claim: per-rank
//! Filter/Main/Back-projection threads overlapped through circular
//! buffers (Section 4.1.3, Figure 4), validated stage-by-stage against an
//! analytic performance model (Eqs. 8-19). Seeing that overlap — and the
//! buffer stalls and per-projection AllGather cadence it hides — needs
//! stage-resolved measurement, not end-to-end wall clocks. This crate is
//! that measurement layer:
//!
//! * [`Recorder`] — a shared sink with three dispatch modes: `off`
//!   (every call is a no-op: no locks, no allocations, no clock reads),
//!   `summary` (per-stage aggregates only) and `trace` (full span
//!   timelines). Hot-path cost in `off` mode is a single enum check.
//! * [`Track`] / [`Span`] — nestable RAII spans tagged
//!   `{rank, thread role, stage, projection/batch index}` with monotonic
//!   timestamps, plus counters, high-water gauges and log2 latency
//!   histograms. Tracks buffer thread-locally and merge into the shared
//!   sink once, when the thread's track is dropped — recording itself
//!   never contends on a lock.
//! * [`chrome`] — export a capture as Chrome trace-event JSON, loadable
//!   in Perfetto or `chrome://tracing`, one process per rank and one
//!   named thread per pipeline role.
//! * [`TraceData::summary_values`] — fold a capture into flat
//!   `name -> f64` pairs for `ifdk::report::RunReport`.
//! * [`DivergenceReport`] — the paper's model-validation methodology
//!   in-repo: predicted-vs-observed seconds per pipeline stage.
//! * [`analysis`] — offline critical-path & stall analysis over a
//!   capture: per-role busy/stall/idle timelines, the producer→consumer
//!   dependency graph from span `deps` tags, ring-stall attribution and
//!   the Eq.-19 overlap-efficiency figure (`max_stage / wall`).
//! * [`live`] — live telemetry for *running* reconstructions: periodic
//!   versioned [`MetricsSnapshot`] frames (JSONL / Prometheus text), an
//!   always-on bounded flight recorder dumpable into a normal
//!   [`TraceData`], a ring-stall watchdog, and a model-weighted
//!   progress/ETA estimator ([`live::ProgressSnapshot`]).
//! * [`current`] — a thread-bound ambient track so leaf substrates
//!   (e.g. `ct-pfs`) can record spans without threading a handle through
//!   every call signature.
//!
//! ```
//! use ct_obs::{Recorder, ThreadRole};
//!
//! let rec = Recorder::trace();
//! let track = rec.track(0, ThreadRole::Filter);
//! {
//!     let mut span = track.span("filter").with_index(7);
//!     span.set_bytes(4096);
//! } // recorded on drop
//! drop(track); // tracks merge into the recorder when dropped
//! let data = rec.collect();
//! assert_eq!(data.events.len(), 1);
//! assert!(ct_obs::chrome::to_chrome_json(&data).contains("\"ph\":\"X\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod chrome;
pub mod clock;
pub mod current;
pub mod divergence;
pub mod jsonw;
pub mod live;
pub mod recorder;
pub mod trace;

pub use analysis::PipelineAnalysis;
pub use divergence::{DivergenceReport, StageDivergence};
pub use live::{
    FlightRecorder, LiveOptions, LiveOutcome, LiveRegistry, LiveSession, MetricsSnapshot,
    RingLiveState, RingProbe, WatchdogTrip,
};
pub use recorder::{Mode, Recorder, Span, ThreadRole, Track};
pub use trace::{Hist, MetricStat, SpanDeps, SpanEvent, StageStat, TraceData};
