//! The recorder: shared sink, per-thread tracks, RAII spans and metrics.
//!
//! Design: a [`Recorder`] is a cheap-to-clone handle on a shared sink (or
//! on nothing, when disabled). Each pipeline thread opens a [`Track`]
//! tagged with its `(rank, role)`; spans and metrics buffer in the
//! track's thread-local storage and merge into the shared sink exactly
//! once, when the last clone of the track is dropped. The hot path
//! therefore never takes a lock, and with the recorder off it does no
//! work at all — no clock reads, no allocation, a single `Option` check.

use crate::trace::{Hist, MetricStat, SpanDeps, SpanEvent, StageStat, TraceData};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which pipeline thread a track belongs to (paper Figure 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ThreadRole {
    /// The filtering thread: PFS load + ramp filtering.
    Filter,
    /// The main thread: per-projection AllGather, row Reduce, store.
    Main,
    /// The back-projection thread: batched kernel accumulation.
    Backprojection,
    /// Auxiliary I/O not attributable to a pipeline thread.
    Io,
    /// Anything else (drivers, tests, examples).
    Other,
}

impl ThreadRole {
    /// Stable display name, also used as the Chrome-trace thread name.
    pub fn as_str(self) -> &'static str {
        match self {
            ThreadRole::Filter => "filter",
            ThreadRole::Main => "main",
            ThreadRole::Backprojection => "backprojection",
            ThreadRole::Io => "io",
            ThreadRole::Other => "other",
        }
    }

    /// Stable thread id for trace export (one lane per role).
    pub fn tid(self) -> u64 {
        match self {
            ThreadRole::Filter => 1,
            ThreadRole::Main => 2,
            ThreadRole::Backprojection => 3,
            ThreadRole::Io => 4,
            ThreadRole::Other => 5,
        }
    }

    /// The inverse of [`ThreadRole::tid`], for trace re-import.
    pub fn from_tid(tid: u64) -> Option<ThreadRole> {
        match tid {
            1 => Some(ThreadRole::Filter),
            2 => Some(ThreadRole::Main),
            3 => Some(ThreadRole::Backprojection),
            4 => Some(ThreadRole::Io),
            5 => Some(ThreadRole::Other),
            _ => None,
        }
    }
}

/// What an enabled recorder retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Per-stage aggregates only (counts, totals, extrema, histograms) —
    /// the cost profile of the old `StageTimer`, minus its per-sample
    /// allocations.
    Summary,
    /// Aggregates plus every individual span, for timeline export.
    Trace,
}

#[derive(Debug, Default)]
struct Global {
    events: Vec<SpanEvent>,
    stages: BTreeMap<(u32, ThreadRole, &'static str), StageAgg>,
    counters: BTreeMap<(u32, ThreadRole, &'static str), u64>,
    gauges: BTreeMap<(u32, ThreadRole, &'static str), u64>,
}

/// Live-telemetry hooks attached to a recorder. Read once per
/// [`Recorder::track`] call; tracks opened before an attach do not feed
/// the hooks (attach before launching the pipeline).
#[derive(Debug, Default)]
struct LiveHooks {
    live: Option<crate::live::LiveRegistry>,
    flight: Option<crate::live::FlightRecorder>,
}

#[derive(Debug)]
struct Inner {
    mode: Mode,
    origin: Instant,
    state: Mutex<Global>,
    hooks: Mutex<LiveHooks>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of trace; the cast is safe for
        // any real run.
        self.origin.elapsed().as_nanos() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Global> {
        // A panicked rank must not lose the other ranks' telemetry.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Per-stage aggregate: the summary every mode maintains.
#[derive(Debug, Clone, Default)]
struct StageAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    bytes: u64,
    hist: Hist,
}

impl StageAgg {
    fn record(&mut self, dur_ns: u64, bytes: u64) {
        self.min_ns = if self.count == 0 {
            dur_ns
        } else {
            self.min_ns.min(dur_ns)
        };
        self.count += 1;
        self.total_ns += dur_ns;
        self.max_ns = self.max_ns.max(dur_ns);
        self.bytes += bytes;
        self.hist.record(dur_ns);
    }

    fn merge(&mut self, other: &StageAgg) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.bytes += other.bytes;
        self.hist.merge(&other.hist);
    }
}

/// A cheap-to-clone handle on a shared observation sink. `off` recorders
/// carry no sink at all, making every recording call a no-op.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A disabled recorder: no locks, no allocations, no clock reads.
    /// This is also the `Default`.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// Per-stage aggregates only — cheap enough for always-on use.
    pub fn summary() -> Self {
        Self::with_mode(Mode::Summary)
    }

    /// Full span capture for timeline export.
    pub fn trace() -> Self {
        Self::with_mode(Mode::Trace)
    }

    fn with_mode(mode: Mode) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                mode,
                origin: Instant::now(),
                state: Mutex::new(Global::default()),
                hooks: Mutex::new(LiveHooks::default()),
            })),
        }
    }

    /// True unless this recorder is `off`.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when individual spans are retained for timeline export.
    pub fn is_tracing(&self) -> bool {
        matches!(self.inner.as_deref(), Some(i) if i.mode == Mode::Trace)
    }

    /// Open a track for one `(rank, role)` pipeline thread. The track
    /// buffers locally; its data reaches the recorder when the last clone
    /// of the track is dropped (normally: when the thread finishes).
    pub fn track(&self, rank: u32, role: ThreadRole) -> Track {
        Track {
            shared: self.inner.as_ref().map(|inner| {
                let (live, flight) = {
                    let hooks = inner.hooks.lock().unwrap_or_else(|p| p.into_inner());
                    (
                        hooks.live.clone(),
                        hooks.flight.as_ref().map(|f| f.lane(rank, role)),
                    )
                };
                Rc::new(TrackShared {
                    inner: Arc::clone(inner),
                    rank,
                    role,
                    local: RefCell::new(Local::default()),
                    live,
                    flight,
                    live_cells: RefCell::new(BTreeMap::new()),
                    live_counters: RefCell::new(BTreeMap::new()),
                    live_gauges: RefCell::new(BTreeMap::new()),
                })
            }),
        }
    }

    /// Attach a live-metrics registry: tracks opened *after* this call
    /// mirror their completed spans, counters and gauges into it as they
    /// record (see [`crate::live`]). No-op on an `off` recorder (a
    /// disabled recorder hands out disabled tracks).
    pub fn attach_live(&self, registry: &crate::live::LiveRegistry) {
        if let Some(inner) = self.inner.as_deref() {
            inner.hooks.lock().unwrap_or_else(|p| p.into_inner()).live = Some(registry.clone());
        }
    }

    /// Attach a flight recorder: tracks opened after this call feed
    /// every completed span into their `(rank, role)` flight lane —
    /// in every mode, including `summary` (the flight window is bounded,
    /// so this does not reintroduce unbounded capture).
    pub fn attach_flight(&self, flight: &crate::live::FlightRecorder) {
        if let Some(inner) = self.inner.as_deref() {
            inner.hooks.lock().unwrap_or_else(|p| p.into_inner()).flight = Some(flight.clone());
        }
    }

    /// Detach both live hooks (registry and flight recorder). Tracks
    /// opened after this call stop mirroring; already-open tracks keep
    /// their handles until dropped.
    pub fn detach_live(&self) {
        if let Some(inner) = self.inner.as_deref() {
            *inner.hooks.lock().unwrap_or_else(|p| p.into_inner()) = LiveHooks::default();
        }
    }

    /// Snapshot everything merged so far as a [`TraceData`]. Tracks that
    /// are still open have not merged yet; call this after the
    /// instrumented run completes.
    pub fn collect(&self) -> TraceData {
        let Some(inner) = self.inner.as_deref() else {
            return TraceData::default();
        };
        let g = inner.lock();
        let mut events = g.events.clone();
        // Thread-merge order is nondeterministic; the capture is not.
        events.sort_by_key(|e| (e.rank, e.role, e.start_ns, e.name, e.index));
        TraceData {
            events,
            stages: g
                .stages
                .iter()
                .map(|(&(rank, role, name), a)| StageStat {
                    rank,
                    role,
                    name,
                    count: a.count,
                    total_ns: a.total_ns,
                    min_ns: a.min_ns,
                    max_ns: a.max_ns,
                    bytes: a.bytes,
                    hist: a.hist.clone(),
                })
                .collect(),
            counters: g
                .counters
                .iter()
                .map(|(&(rank, role, name), &value)| MetricStat {
                    rank,
                    role,
                    name,
                    value,
                })
                .collect(),
            gauges: g
                .gauges
                .iter()
                .map(|(&(rank, role, name), &value)| MetricStat {
                    rank,
                    role,
                    name,
                    value,
                })
                .collect(),
        }
    }

    /// Clear everything recorded so far (the clock origin is retained).
    /// Lets one recorder be reused across runs without mixing captures.
    pub fn reset(&self) {
        if let Some(inner) = self.inner.as_deref() {
            *inner.lock() = Global::default();
        }
    }
}

#[derive(Debug, Default)]
struct Local {
    events: Vec<SpanEvent>,
    stages: BTreeMap<&'static str, StageAgg>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
}

#[derive(Debug)]
struct TrackShared {
    inner: Arc<Inner>,
    rank: u32,
    role: ThreadRole,
    local: RefCell<Local>,
    /// Live registry handle, when one was attached at track-open time.
    live: Option<crate::live::LiveRegistry>,
    /// This lane's flight ring, when a flight recorder was attached.
    flight: Option<crate::live::FlightLane>,
    /// Per-name caches so the hot path hits the registry's maps once per
    /// `(track, name)` rather than once per record.
    live_cells: RefCell<BTreeMap<&'static str, Arc<crate::live::StageCell>>>,
    live_counters: RefCell<BTreeMap<&'static str, Arc<std::sync::atomic::AtomicU64>>>,
    live_gauges: RefCell<BTreeMap<&'static str, Arc<std::sync::atomic::AtomicU64>>>,
}

impl TrackShared {
    fn live_cell(&self, name: &'static str) -> Option<Arc<crate::live::StageCell>> {
        let reg = self.live.as_ref()?;
        let mut cells = self.live_cells.borrow_mut();
        Some(Arc::clone(
            cells.entry(name).or_insert_with(|| reg.stage(name)),
        ))
    }

    /// Mirror one completed span into the live hooks: the stage's
    /// completion cell and this lane's flight ring.
    #[allow(clippy::too_many_arguments)]
    fn live_span(
        &self,
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        index: Option<u64>,
        bytes: Option<u64>,
        deps: Option<SpanDeps>,
    ) {
        if let Some(cell) = self.live_cell(name) {
            cell.record(dur_ns);
        }
        if let Some(lane) = self.flight.as_ref() {
            lane.record(SpanEvent {
                rank: self.rank,
                role: self.role,
                name,
                start_ns,
                dur_ns,
                index,
                bytes,
                deps,
            });
        }
    }

    fn live_counter_add(&self, name: &'static str, delta: u64) {
        let Some(reg) = self.live.as_ref() else {
            return;
        };
        let mut counters = self.live_counters.borrow_mut();
        counters
            .entry(name)
            .or_insert_with(|| reg.counter(name))
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
    }

    fn live_gauge_max(&self, name: &'static str, value: u64) {
        let Some(reg) = self.live.as_ref() else {
            return;
        };
        let mut gauges = self.live_gauges.borrow_mut();
        gauges
            .entry(name)
            .or_insert_with(|| reg.gauge(name))
            .fetch_max(value, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Drop for TrackShared {
    fn drop(&mut self) {
        let local = self.local.take();
        if local.events.is_empty()
            && local.stages.is_empty()
            && local.counters.is_empty()
            && local.gauges.is_empty()
        {
            return;
        }
        let mut g = self.inner.lock();
        g.events.extend(local.events);
        for (name, agg) in local.stages {
            g.stages
                .entry((self.rank, self.role, name))
                .or_default()
                .merge(&agg);
        }
        for (name, v) in local.counters {
            *g.counters.entry((self.rank, self.role, name)).or_insert(0) += v;
        }
        for (name, v) in local.gauges {
            let e = g.gauges.entry((self.rank, self.role, name)).or_insert(0);
            *e = (*e).max(v);
        }
    }
}

/// One `(rank, role)` recording lane. Not `Send`: a track belongs to the
/// thread that opened it (clones share the same thread-local buffer).
#[derive(Debug, Clone)]
pub struct Track {
    shared: Option<Rc<TrackShared>>,
}

impl Track {
    /// A track that records nothing (what `Recorder::off` hands out).
    pub fn disabled() -> Self {
        Track { shared: None }
    }

    /// True unless the parent recorder was off.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The rank tag, if recording.
    pub fn rank(&self) -> Option<u32> {
        self.shared.as_ref().map(|s| s.rank)
    }

    /// The role tag, if recording.
    pub fn role(&self) -> Option<ThreadRole> {
        self.shared.as_ref().map(|s| s.role)
    }

    /// Open a span for `stage`. The span records when dropped; spans nest
    /// freely (each is an independent guard on the same track).
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: self.shared.as_ref().map(|sh| SpanInner {
                track: Rc::clone(sh),
                name,
                start_ns: sh.inner.now_ns(),
                index: None,
                bytes: None,
                deps: None,
            }),
        }
    }

    /// Time a closure under `stage`, returning its result.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Add to a monotonically increasing counter (e.g. ring push stalls,
    /// bytes moved).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(sh) = self.shared.as_ref() {
            *sh.local.borrow_mut().counters.entry(name).or_insert(0) += delta;
            sh.live_counter_add(name, delta);
        }
    }

    /// Raise a high-water-mark gauge (e.g. ring-buffer occupancy).
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        if let Some(sh) = self.shared.as_ref() {
            {
                let mut local = sh.local.borrow_mut();
                let e = local.gauges.entry(name).or_insert(0);
                *e = (*e).max(value);
            }
            sh.live_gauge_max(name, value);
        }
    }

    /// Record a span that already ran, from wall-clock instants captured
    /// elsewhere — typically on pool worker threads, which cannot own a
    /// `Track` (tracks are thread-local by design). The span lands on
    /// this track's `(rank, role)` lane exactly as if it had been opened
    /// at `started` and dropped at `finished`; instants predating the
    /// recorder's origin clamp to it.
    pub fn record_completed(
        &self,
        name: &'static str,
        index: Option<u64>,
        bytes: Option<u64>,
        started: Instant,
        finished: Instant,
    ) {
        let Some(sh) = self.shared.as_ref() else {
            return;
        };
        let origin = sh.inner.origin;
        let start_ns = started.saturating_duration_since(origin).as_nanos() as u64;
        let end_ns = finished.saturating_duration_since(origin).as_nanos() as u64;
        let dur_ns = end_ns.saturating_sub(start_ns);
        {
            let mut local = sh.local.borrow_mut();
            local
                .stages
                .entry(name)
                .or_default()
                .record(dur_ns, bytes.unwrap_or(0));
            if sh.inner.mode == Mode::Trace {
                local.events.push(SpanEvent {
                    rank: sh.rank,
                    role: sh.role,
                    name,
                    start_ns,
                    dur_ns,
                    index,
                    bytes,
                    deps: None,
                });
            }
        }
        sh.live_span(name, start_ns, dur_ns, index, bytes, None);
    }

    /// Record one sample into `name`'s latency histogram without opening
    /// a span (count/total/extrema/log2 buckets, no timeline event).
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if let Some(sh) = self.shared.as_ref() {
            sh.local
                .borrow_mut()
                .stages
                .entry(name)
                .or_default()
                .record(ns, 0);
            if let Some(cell) = sh.live_cell(name) {
                cell.record(ns);
            }
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    track: Rc<TrackShared>,
    name: &'static str,
    start_ns: u64,
    index: Option<u64>,
    bytes: Option<u64>,
    deps: Option<SpanDeps>,
}

/// An in-flight span; records itself (duration, tags) when dropped.
#[derive(Debug)]
#[must_use = "a span records the duration until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// A span that records nothing.
    pub fn disabled() -> Self {
        Span { inner: None }
    }

    /// Tag with a projection/batch index (builder style).
    pub fn with_index(mut self, index: u64) -> Self {
        if let Some(s) = self.inner.as_mut() {
            s.index = Some(index);
        }
        self
    }

    /// Tag the producer spans this span consumed: an inclusive index
    /// range `lo..=hi` into `stage`'s spans on the same rank (builder
    /// style). Feeds [`crate::analysis`] dependency edges and Chrome flow
    /// arrows.
    pub fn with_deps(mut self, stage: &'static str, lo: u64, hi: u64) -> Self {
        if let Some(s) = self.inner.as_mut() {
            s.deps = Some(SpanDeps { stage, lo, hi });
        }
        self
    }

    /// Tag with the number of payload bytes this span moved.
    pub fn set_bytes(&mut self, bytes: u64) {
        if let Some(s) = self.inner.as_mut() {
            s.bytes = Some(bytes);
        }
    }

    /// True when this span will actually record.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else {
            return;
        };
        let end_ns = s.track.inner.now_ns();
        let dur_ns = end_ns.saturating_sub(s.start_ns);
        {
            let mut local = s.track.local.borrow_mut();
            local
                .stages
                .entry(s.name)
                .or_default()
                .record(dur_ns, s.bytes.unwrap_or(0));
            if s.track.inner.mode == Mode::Trace {
                local.events.push(SpanEvent {
                    rank: s.track.rank,
                    role: s.track.role,
                    name: s.name,
                    start_ns: s.start_ns,
                    dur_ns,
                    index: s.index,
                    bytes: s.bytes,
                    deps: s.deps,
                });
            }
        }
        s.track
            .live_span(s.name, s.start_ns, dur_ns, s.index, s.bytes, s.deps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let rec = Recorder::off();
        assert!(!rec.is_enabled());
        assert!(!rec.is_tracing());
        let track = rec.track(0, ThreadRole::Main);
        assert!(!track.is_enabled());
        assert_eq!(track.rank(), None);
        let mut sp = track.span("x").with_index(3);
        assert!(!sp.is_recording());
        sp.set_bytes(10);
        drop(sp);
        track.counter_add("c", 1);
        track.gauge_max("g", 9);
        track.observe_ns("h", 5);
        assert_eq!(rec.collect(), TraceData::default());
    }

    #[test]
    fn default_recorder_is_off() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn summary_mode_aggregates_without_events() {
        let rec = Recorder::summary();
        assert!(rec.is_enabled());
        assert!(!rec.is_tracing());
        {
            let track = rec.track(2, ThreadRole::Filter);
            for i in 0..5u64 {
                let _sp = track.span("filter").with_index(i);
            }
            let mut sp = track.span("load");
            sp.set_bytes(400);
            drop(sp);
        }
        let data = rec.collect();
        assert!(data.events.is_empty(), "summary mode keeps no events");
        let f = data.stage(2, ThreadRole::Filter, "filter").unwrap();
        assert_eq!(f.count, 5);
        assert!(f.total_ns >= f.max_ns);
        assert!(f.min_ns <= f.max_ns);
        let l = data.stage(2, ThreadRole::Filter, "load").unwrap();
        assert_eq!(l.bytes, 400);
    }

    #[test]
    fn trace_mode_records_span_events_with_tags() {
        let rec = Recorder::trace();
        {
            let track = rec.track(1, ThreadRole::Main);
            let mut sp = track.span("allgather").with_index(7);
            sp.set_bytes(1024);
            drop(sp);
        }
        let data = rec.collect();
        assert_eq!(data.events.len(), 1);
        let e = &data.events[0];
        assert_eq!(e.rank, 1);
        assert_eq!(e.role, ThreadRole::Main);
        assert_eq!(e.name, "allgather");
        assert_eq!(e.index, Some(7));
        assert_eq!(e.bytes, Some(1024));
        // Aggregates exist alongside the events.
        assert_eq!(
            data.stage(1, ThreadRole::Main, "allgather").unwrap().count,
            1
        );
    }

    #[test]
    fn with_deps_tags_the_event() {
        let rec = Recorder::trace();
        {
            let track = rec.track(0, ThreadRole::Backprojection);
            let _sp = track
                .span("bp.batch")
                .with_index(0)
                .with_deps("allgather", 3, 5);
        }
        let data = rec.collect();
        let deps = data.events[0].deps.expect("deps tag retained");
        assert_eq!(deps.stage, "allgather");
        assert!(deps.contains(3) && deps.contains(5) && !deps.contains(6));
        // Off spans ignore the builder without panicking.
        let off = Track::disabled().span("x").with_deps("y", 0, 0);
        assert!(!off.is_recording());
    }

    #[test]
    fn spans_nest_and_both_record() {
        let rec = Recorder::trace();
        {
            let track = rec.track(0, ThreadRole::Filter);
            let _outer = track.span("load");
            {
                let _inner = track.span("pfs.read");
            }
        }
        let data = rec.collect();
        assert_eq!(data.events.len(), 2);
        // The inner span starts no earlier and ends no later.
        let outer = data.events.iter().find(|e| e.name == "load").unwrap();
        let inner = data.events.iter().find(|e| e.name == "pfs.read").unwrap();
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn counters_gauges_histograms() {
        let rec = Recorder::summary();
        {
            let track = rec.track(3, ThreadRole::Backprojection);
            track.counter_add("ring.push_stalls", 2);
            track.counter_add("ring.push_stalls", 3);
            track.gauge_max("ring.high_water", 4);
            track.gauge_max("ring.high_water", 9);
            track.gauge_max("ring.high_water", 7);
            track.observe_ns("batch_latency", 1_000);
            track.observe_ns("batch_latency", 1_000_000);
        }
        let data = rec.collect();
        assert_eq!(data.counter(3, "ring.push_stalls"), Some(5));
        assert_eq!(data.gauge(3, "ring.high_water"), Some(9));
        let h = data
            .stage(3, ThreadRole::Backprojection, "batch_latency")
            .unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min_ns, 1_000);
        assert_eq!(h.max_ns, 1_000_000);
        assert_eq!(h.hist.count(), 2);
        assert!(h.hist.bucket_count(Hist::bucket_of(1_000)) >= 1);
    }

    #[test]
    fn attached_hooks_mirror_spans_counters_gauges() {
        use crate::live::{FlightRecorder, LiveRegistry};
        let rec = Recorder::summary();
        let reg = LiveRegistry::new();
        let flight = FlightRecorder::new(4);
        rec.attach_live(&reg);
        rec.attach_flight(&flight);
        {
            let track = rec.track(1, ThreadRole::Filter);
            for i in 0..6u64 {
                let _sp = track.span("filter").with_index(i);
            }
            track.counter_add("msgs", 2);
            track.gauge_max("hw", 9);
            track.observe_ns("ring.gather.push_wait", 5_000);
            let now = Instant::now();
            track.record_completed("bp.tile", Some(0), Some(64), now, now);
        }
        // Live cells saw every span as it completed — even though the
        // recorder is in summary mode (no events in the final capture).
        assert_eq!(reg.stage("filter").done(), 6);
        assert_eq!(reg.stage("ring.gather.push_wait").done(), 1);
        assert_eq!(reg.stage("bp.tile").done(), 1);
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(reg.counter("msgs").load(Relaxed), 2);
        assert_eq!(reg.gauge("hw").load(Relaxed), 9);
        // The flight lane kept the last `capacity` spans, drop-oldest.
        let dump = flight.dump();
        assert!(rec.collect().events.is_empty(), "summary mode");
        let filter_lane: Vec<_> = dump.events.iter().filter(|e| e.name == "filter").collect();
        assert_eq!(filter_lane.len(), 3, "4-capacity lane minus bp.tile");
        assert_eq!(filter_lane[0].index, Some(3), "oldest spans evicted");
        // Detach: tracks opened afterwards stop mirroring.
        rec.detach_live();
        {
            let track = rec.track(1, ThreadRole::Filter);
            let _sp = track.span("filter");
        }
        assert_eq!(reg.stage("filter").done(), 6);
    }

    #[test]
    fn record_completed_lands_like_a_live_span() {
        let rec = Recorder::trace();
        {
            let track = rec.track(2, ThreadRole::Backprojection);
            // Instants measured "somewhere else" (e.g. a pool worker).
            let started = Instant::now();
            let finished = Instant::now();
            track.record_completed("bp.tile", Some(5), Some(64), started, finished);
        }
        let data = rec.collect();
        assert_eq!(data.events.len(), 1);
        let e = &data.events[0];
        assert_eq!(e.name, "bp.tile");
        assert_eq!(e.index, Some(5));
        assert_eq!(e.bytes, Some(64));
        let s = data
            .stage(2, ThreadRole::Backprojection, "bp.tile")
            .unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.bytes, 64);
    }

    #[test]
    fn record_completed_clamps_pre_origin_instants() {
        let before = Instant::now();
        let rec = Recorder::summary();
        let track = rec.track(0, ThreadRole::Other);
        track.record_completed("early", None, None, before, before);
        drop(track);
        let data = rec.collect();
        let s = data.stage(0, ThreadRole::Other, "early").unwrap();
        assert_eq!(s.count, 1);
    }

    #[test]
    fn tracks_merge_across_threads() {
        let rec = Recorder::summary();
        std::thread::scope(|s| {
            for rank in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    let track = rec.track(rank, ThreadRole::Filter);
                    for _ in 0..10 {
                        let _sp = track.span("filter");
                    }
                    track.counter_add("n", 1);
                });
            }
        });
        let data = rec.collect();
        assert_eq!(data.stages.len(), 4);
        for rank in 0..4 {
            assert_eq!(
                data.stage(rank, ThreadRole::Filter, "filter")
                    .unwrap()
                    .count,
                10
            );
            assert_eq!(data.counter(rank, "n"), Some(1));
        }
    }

    #[test]
    fn same_tag_tracks_accumulate() {
        // Two successive tracks with the same (rank, role) — e.g. a rank
        // re-run or a track per phase — merge into one aggregate.
        let rec = Recorder::summary();
        for _ in 0..2 {
            let track = rec.track(0, ThreadRole::Main);
            let _sp = track.span("reduce");
        }
        assert_eq!(
            rec.collect()
                .stage(0, ThreadRole::Main, "reduce")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn clones_share_one_buffer_and_merge_once() {
        let rec = Recorder::trace();
        {
            let track = rec.track(0, ThreadRole::Main);
            let clone = track.clone();
            let _a = track.span("a");
            let _b = clone.span("b");
            drop(track); // clone still alive: nothing merged yet
            assert_eq!(rec.collect().events.len(), 0);
            drop((_a, _b));
            drop(clone);
        }
        assert_eq!(rec.collect().events.len(), 2);
    }

    #[test]
    fn reset_clears_the_capture() {
        let rec = Recorder::summary();
        {
            let track = rec.track(0, ThreadRole::Main);
            let _sp = track.span("x");
        }
        assert!(!rec.collect().stages.is_empty());
        rec.reset();
        assert_eq!(rec.collect(), TraceData::default());
    }

    #[test]
    fn time_passes_through_result() {
        let rec = Recorder::summary();
        let track = rec.track(0, ThreadRole::Other);
        let v = track.time("work", || 41 + 1);
        assert_eq!(v, 42);
        drop(track);
        assert_eq!(
            rec.collect()
                .stage(0, ThreadRole::Other, "work")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn role_names_and_tids_are_distinct() {
        let roles = [
            ThreadRole::Filter,
            ThreadRole::Main,
            ThreadRole::Backprojection,
            ThreadRole::Io,
            ThreadRole::Other,
        ];
        let names: std::collections::BTreeSet<_> = roles.iter().map(|r| r.as_str()).collect();
        let tids: std::collections::BTreeSet<_> = roles.iter().map(|r| r.tid()).collect();
        assert_eq!(names.len(), roles.len());
        assert_eq!(tids.len(), roles.len());
    }
}
