//! Model-vs-measured divergence reporting.
//!
//! The paper validates its performance model by putting predicted and
//! measured per-stage times side by side (Table 5, Figure 5 "theoretical"
//! vs "measured" series). [`DivergenceReport`] is that methodology as a
//! data structure: one row per pipeline stage with the model's prediction,
//! the observed time and their ratio. The crate stays model-agnostic —
//! whoever owns the analytic model (in this repo, `ifdk` feeding
//! `ct-perfmodel`) pushes rows; this module only holds and formats them.

use std::fmt;

/// Predicted vs observed seconds for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDivergence {
    /// Stage name (matches the recorder's span vocabulary).
    pub stage: String,
    /// The model's prediction, seconds.
    pub predicted_secs: f64,
    /// The recorder's observation, seconds.
    pub observed_secs: f64,
}

impl StageDivergence {
    /// `observed / predicted`. A ratio above 1 means the stage ran slower
    /// than the model claims; below 1, faster. Degenerate predictions are
    /// handled explicitly: if the model predicts (essentially) zero, the
    /// ratio is 1 when the observation is also zero and infinite
    /// otherwise.
    pub fn ratio(&self) -> f64 {
        if self.predicted_secs <= f64::EPSILON {
            if self.observed_secs <= f64::EPSILON {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.observed_secs / self.predicted_secs
        }
    }
}

/// Per-stage predicted-vs-observed rows for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DivergenceReport {
    /// The rows, in push order (conventionally pipeline order).
    pub stages: Vec<StageDivergence>,
}

impl DivergenceReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one stage row.
    pub fn push(&mut self, stage: impl Into<String>, predicted_secs: f64, observed_secs: f64) {
        self.stages.push(StageDivergence {
            stage: stage.into(),
            predicted_secs,
            observed_secs,
        });
    }

    /// Look a stage up by name.
    pub fn stage(&self, name: &str) -> Option<&StageDivergence> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// True when no stages were pushed.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The row with the largest divergence from 1 (in either direction,
    /// measured on the log scale, so 2x slow and 2x fast are equally
    /// divergent). `None` when empty.
    pub fn worst(&self) -> Option<&StageDivergence> {
        self.stages.iter().max_by(|a, b| {
            let da = a.ratio().ln().abs();
            let db = b.ratio().ln().abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Render as an aligned text table (what the Display impl prints).
    pub fn to_table(&self) -> String {
        let mut rows: Vec<[String; 4]> = vec![[
            "stage".into(),
            "predicted".into(),
            "observed".into(),
            "obs/pred".into(),
        ]];
        for s in &self.stages {
            let ratio = s.ratio();
            let ratio_txt = if ratio.is_finite() {
                format!("{ratio:.2}x")
            } else {
                "inf".to_string()
            };
            rows.push([
                s.stage.clone(),
                format!("{:.6} s", s.predicted_secs),
                format!("{:.6} s", s.observed_secs),
                ratio_txt,
            ]);
        }
        let mut widths = [0usize; 4];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>w$}", cell, w = widths[c]))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                out.push_str(sep.join("  ").trim_end());
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        let s = StageDivergence {
            stage: "filter".into(),
            predicted_secs: 2.0,
            observed_secs: 3.0,
        };
        assert!((s.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_predictions() {
        let zero_zero = StageDivergence {
            stage: "reduce".into(),
            predicted_secs: 0.0,
            observed_secs: 0.0,
        };
        assert_eq!(zero_zero.ratio(), 1.0);
        let zero_some = StageDivergence {
            stage: "reduce".into(),
            predicted_secs: 0.0,
            observed_secs: 0.5,
        };
        assert!(zero_some.ratio().is_infinite());
    }

    #[test]
    fn push_lookup_and_worst() {
        let mut r = DivergenceReport::new();
        assert!(r.is_empty());
        assert!(r.worst().is_none());
        r.push("load", 1.0, 1.1);
        r.push("filter", 1.0, 4.0);
        r.push("store", 1.0, 0.9);
        assert!(!r.is_empty());
        assert_eq!(r.stage("filter").unwrap().observed_secs, 4.0);
        assert!(r.stage("missing").is_none());
        assert_eq!(r.worst().unwrap().stage, "filter");
        // A 10x-fast stage diverges more than a 4x-slow one.
        r.push("allgather", 1.0, 0.1);
        assert_eq!(r.worst().unwrap().stage, "allgather");
    }

    #[test]
    fn table_renders_all_rows() {
        let mut r = DivergenceReport::new();
        r.push("load", 0.5, 0.25);
        r.push("backprojection", 2.0, 0.0);
        let t = r.to_table();
        assert!(t.contains("stage"));
        assert!(t.contains("obs/pred"));
        assert!(t.contains("load"));
        assert!(t.contains("backprojection"));
        assert!(t.contains("0.50x"));
        assert!(t.contains("0.00x"));
        assert_eq!(format!("{r}"), t);
        // Header + separator + two rows.
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn infinite_ratio_renders() {
        let mut r = DivergenceReport::new();
        r.push("reduce", 0.0, 0.5);
        assert!(r.to_table().contains("inf"));
    }
}
