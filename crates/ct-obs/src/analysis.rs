//! Offline critical-path and stall analysis over a trace capture.
//!
//! The paper's pipeline claim (Section 4.1.3, Figure 4) is that per-rank
//! Filter/Main/Back-projection threads overlap through circular buffers
//! so completely that end-to-end time collapses to the slowest single
//! stage — Eq. 19's `max(...)`. A wall clock cannot confirm that; this
//! module can. [`PipelineAnalysis::from_trace`] consumes a
//! [`TraceData`] capture (live from a recorder, or re-imported with
//! [`crate::chrome::parse_trace`]) and computes:
//!
//! * **per-lane utilization** — for every `(rank, role)` lane: busy
//!   time, ring-wait stall time, idle time, and the *bubbles* (gaps with
//!   nothing running) that break the pipeline ([`LaneUtilization`]);
//! * **ring-stall attribution** — who waited, on which buffer, how many
//!   times, for how long ([`StallStat`]), from the timed
//!   `*.push_wait` / `*.pop_wait` spans `ifdk::ring` records;
//! * **the critical path** — the heaviest chain (by covered time)
//!   through the producer→consumer dependency graph built from span
//!   [`crate::SpanDeps`] tags, program order, collective peer groups
//!   and buffer releases ([`PathStep`]);
//! * **overlap efficiency** — `max_stage_secs / wall_secs`, the measured
//!   counterpart of Eq. 19: 1.0 means the pipeline is perfectly hidden
//!   behind its slowest stage, lower values quantify lost overlap.
//!
//! The analysis is pure: no clocks, no I/O, deterministic for a given
//! capture.
//!
//! ```
//! use ct_obs::{Recorder, ThreadRole};
//! use ct_obs::analysis::PipelineAnalysis;
//!
//! let rec = Recorder::trace();
//! {
//!     let t = rec.track(0, ThreadRole::Filter);
//!     let _s = t.span("filter").with_index(0);
//! }
//! let a = PipelineAnalysis::from_trace(&rec.collect()).unwrap();
//! assert!(a.overlap_efficiency > 0.0 && a.overlap_efficiency <= 1.0);
//! ```

use crate::recorder::ThreadRole;
use crate::trace::{fmt_ns, SpanEvent, TraceData};
use std::collections::BTreeMap;
use std::fmt;

/// Which side of a ring buffer a stall was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallKind {
    /// The producer waited for free space (`*.push_wait`).
    Push,
    /// The consumer waited for an item (`*.pop_wait`).
    Pop,
}

impl StallKind {
    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            StallKind::Push => "push",
            StallKind::Pop => "pop",
        }
    }
}

/// Split a span name into `(buffer, kind)` when it is a ring-wait span.
/// `ring.gather.push_wait` → `("ring.gather", Push)`.
fn wait_span(name: &'static str) -> Option<(&'static str, StallKind)> {
    if let Some(buf) = name.strip_suffix(".push_wait") {
        Some((buf, StallKind::Push))
    } else {
        name.strip_suffix(".pop_wait")
            .map(|buf| (buf, StallKind::Pop))
    }
}

/// Busy/stall/idle accounting for one `(rank, role)` pipeline lane,
/// measured against the capture's global `[start, end]` window.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneUtilization {
    /// Distributed rank.
    pub rank: u32,
    /// Pipeline thread role.
    pub role: ThreadRole,
    /// Nanoseconds covered by non-wait spans (interval union, so
    /// overlapping worker spans are not double-counted).
    pub busy_ns: u64,
    /// Nanoseconds spent inside ring-wait spans.
    pub stall_ns: u64,
    /// Nanoseconds of the global window with nothing recorded on this
    /// lane: `wall - busy - stall`, the summed bubble time.
    pub idle_ns: u64,
    /// The gaps themselves, `(start_ns, end_ns)` within the global
    /// window, longest uncovered stretches of the lane.
    pub bubbles: Vec<(u64, u64)>,
}

impl LaneUtilization {
    /// Busy fraction of the global window, in `[0, 1]`.
    pub fn busy_frac(&self) -> f64 {
        let wall = self.busy_ns + self.stall_ns + self.idle_ns;
        if wall == 0 {
            0.0
        } else {
            self.busy_ns as f64 / wall as f64
        }
    }
}

/// Aggregated ring-buffer stall observations for one
/// `(rank, role, buffer, side)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallStat {
    /// Rank that waited.
    pub rank: u32,
    /// Role (lane) that waited.
    pub role: ThreadRole,
    /// Ring-buffer name the wait was on (span name minus the
    /// `.push_wait` / `.pop_wait` suffix).
    pub buffer: &'static str,
    /// Producer- or consumer-side wait.
    pub kind: StallKind,
    /// Number of wait spans observed.
    pub count: u64,
    /// Summed wait nanoseconds.
    pub total_ns: u64,
    /// Longest single wait, nanoseconds.
    pub max_ns: u64,
}

/// How a critical-path step is linked to the step that precedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The chronologically first step: nothing preceded it.
    Origin,
    /// Program order: the previous span on the same lane.
    Program,
    /// A producer→consumer edge from a [`crate::SpanDeps`] tag.
    Dependency,
    /// A collective peer (AllGather within a grid column, Reduce within
    /// a grid row): the slowest participant gates the operation.
    Collective,
    /// A buffer release: a wait span ended because another lane of the
    /// same rank made progress.
    Release,
}

impl EdgeKind {
    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Origin => "origin",
            EdgeKind::Program => "program order",
            EdgeKind::Dependency => "dependency",
            EdgeKind::Collective => "collective peer",
            EdgeKind::Release => "buffer release",
        }
    }
}

/// One span on the critical path, chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Rank of the span.
    pub rank: u32,
    /// Lane of the span.
    pub role: ThreadRole,
    /// Stage name.
    pub name: &'static str,
    /// Projection / batch index tag, if any.
    pub index: Option<u64>,
    /// Start, nanoseconds since capture origin.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// How the *predecessor* step handed off to this one.
    pub edge: EdgeKind,
}

/// The complete offline analysis of one pipeline run.
///
/// Built by [`PipelineAnalysis::from_trace`]; rendered with
/// [`PipelineAnalysis::report`]; gated with
/// [`PipelineAnalysis::meets_overlap`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineAnalysis {
    /// Capture start: earliest span start, nanoseconds.
    pub start_ns: u64,
    /// End-to-end wall time covered by the capture, nanoseconds.
    pub wall_ns: u64,
    /// Busy time of the busiest lane — the denominator-free side of
    /// Eq. 19's `max(...)`.
    pub max_stage_ns: u64,
    /// The lane that owns `max_stage_ns`.
    pub max_stage_lane: (u32, ThreadRole),
    /// Covered time of the critical path, nanoseconds: each step adds
    /// its interval minus the overlap with its predecessor's end.
    /// Always within `[max_stage_ns, wall_ns]` — the busiest lane's own
    /// program-order chain is a candidate chain, and end-ordered chains
    /// cannot cover more than the wall.
    pub critical_path_ns: u64,
    /// `max_stage / wall` in `[0, 1]`: 1.0 means wall time collapsed to
    /// the slowest stage, exactly the paper's pipeline ideal.
    pub overlap_efficiency: f64,
    /// Per-lane busy/stall/idle accounting, sorted by `(rank, role)`.
    pub lanes: Vec<LaneUtilization>,
    /// Ring-stall attribution, sorted by descending total wait.
    pub stalls: Vec<StallStat>,
    /// The critical path, chronological.
    pub critical_path: Vec<PathStep>,
}

/// Merge intervals into a disjoint sorted union.
fn merged(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (s, e) in v {
        if let Some(last) = out.last_mut() {
            if s <= last.1 {
                last.1 = last.1.max(e);
                continue;
            }
        }
        out.push((s, e));
    }
    out
}

/// Total length of a disjoint interval set.
fn interval_total(v: &[(u64, u64)]) -> u64 {
    v.iter().map(|(s, e)| e - s).sum()
}

/// `a \ b` for disjoint sorted interval sets.
fn interval_subtract(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut bi = 0;
    for &(mut s, e) in a {
        while s < e {
            // Skip b-intervals entirely before s.
            while bi < b.len() && b[bi].1 <= s {
                bi += 1;
            }
            match b.get(bi) {
                Some(&(bs, be)) if bs < e => {
                    if s < bs {
                        out.push((s, bs));
                    }
                    s = be.max(s);
                }
                _ => {
                    out.push((s, e));
                    break;
                }
            }
        }
        // A b-interval can span into the next a-interval; step back so the
        // outer skip re-evaluates it.
        bi = bi.saturating_sub(1);
    }
    out
}

/// `(waits, total stalled ns, max single stall ns)` accumulator keyed
/// by `(rank, role, buffer, side)`.
type StallAgg = BTreeMap<(u32, ThreadRole, &'static str, StallKind), (u64, u64, u64)>;

/// One dependency-graph node: a top-level (non-nested) span.
struct Node {
    rank: u32,
    role: ThreadRole,
    name: &'static str,
    index: Option<u64>,
    deps: Option<crate::trace::SpanDeps>,
    start_ns: u64,
    end_ns: u64,
    is_wait: bool,
    /// Previous top-level node on the same lane.
    lane_pred: Option<usize>,
}

impl PipelineAnalysis {
    /// Analyze a capture. Returns `None` when the capture holds no span
    /// events (summary-mode or empty recorders cannot be analyzed).
    pub fn from_trace(data: &TraceData) -> Option<PipelineAnalysis> {
        if data.events.is_empty() {
            return None;
        }
        let t0 = data
            .events
            .iter()
            .map(|e| e.start_ns)
            .min()
            .expect("events non-empty");
        let t1 = data
            .events
            .iter()
            .map(|e| e.end_ns())
            .max()
            .expect("events non-empty");
        let wall_ns = t1 - t0;

        // ---- group events per (rank, role) lane -------------------------
        let mut lanes_ev: BTreeMap<(u32, ThreadRole), Vec<&SpanEvent>> = BTreeMap::new();
        for e in &data.events {
            lanes_ev.entry((e.rank, e.role)).or_default().push(e);
        }

        // ---- per-lane utilization + top-level node extraction -----------
        let mut nodes: Vec<Node> = Vec::new();
        let mut lanes: Vec<LaneUtilization> = Vec::new();
        let mut stall_agg: StallAgg = BTreeMap::new();
        for (&(rank, role), evs) in &mut lanes_ev {
            // Outer spans first at equal starts, so the sweep sees them
            // before their children.
            evs.sort_by_key(|e| (e.start_ns, std::cmp::Reverse(e.dur_ns)));
            let mut busy_iv = Vec::new();
            let mut wait_iv = Vec::new();
            let mut cur_end = 0u64;
            let mut lane_pred: Option<usize> = None;
            for e in evs.iter() {
                let wait = wait_span(e.name);
                if let Some((buffer, kind)) = wait {
                    wait_iv.push((e.start_ns, e.end_ns()));
                    let s = stall_agg
                        .entry((rank, role, buffer, kind))
                        .or_insert((0, 0, 0));
                    s.0 += 1;
                    s.1 += e.dur_ns;
                    s.2 = s.2.max(e.dur_ns);
                } else {
                    busy_iv.push((e.start_ns, e.end_ns()));
                }
                // Top-level = not contained in a prior span on this lane.
                if e.start_ns >= cur_end || e.end_ns() > cur_end {
                    nodes.push(Node {
                        rank,
                        role,
                        name: e.name,
                        index: e.index,
                        deps: e.deps,
                        start_ns: e.start_ns,
                        end_ns: e.end_ns(),
                        is_wait: wait.is_some(),
                        lane_pred,
                    });
                    lane_pred = Some(nodes.len() - 1);
                    cur_end = cur_end.max(e.end_ns());
                }
            }
            let stall_u = merged(wait_iv);
            // Waits nested in a busy span count as stall, not busy.
            let busy_u = interval_subtract(&merged(busy_iv), &stall_u);
            let covered = {
                let mut all: Vec<(u64, u64)> = busy_u.clone();
                all.extend(stall_u.iter().copied());
                merged(all)
            };
            let mut bubbles = Vec::new();
            let mut cursor = t0;
            for &(s, e) in &covered {
                if s > cursor {
                    bubbles.push((cursor, s));
                }
                cursor = cursor.max(e);
            }
            if cursor < t1 {
                bubbles.push((cursor, t1));
            }
            let busy_ns = interval_total(&busy_u);
            let stall_ns = interval_total(&stall_u);
            lanes.push(LaneUtilization {
                rank,
                role,
                busy_ns,
                stall_ns,
                idle_ns: wall_ns - busy_ns - stall_ns,
                bubbles,
            });
        }

        let mut stalls: Vec<StallStat> = stall_agg
            .into_iter()
            .map(
                |((rank, role, buffer, kind), (count, total_ns, max_ns))| StallStat {
                    rank,
                    role,
                    buffer,
                    kind,
                    count,
                    total_ns,
                    max_ns,
                },
            )
            .collect();
        stalls.sort_by_key(|s| (std::cmp::Reverse(s.total_ns), s.rank, s.role, s.buffer));

        let (max_stage_ns, max_stage_lane) = lanes
            .iter()
            .map(|l| (l.busy_ns, (l.rank, l.role)))
            .max()
            .expect("at least one lane when events exist");

        // ---- critical path: heaviest chain in the dependency graph ------
        // The grid shape, when the run recorded it, turns AllGather and
        // Reduce spans into collective peer groups.
        let grid_rows = data
            .gauges
            .iter()
            .find(|g| g.name == "grid.rows")
            .map(|g| g.value as u32)
            .filter(|&r| r > 0);
        let collective_group = |n: &Node, m: &Node| -> bool {
            let Some(rows) = grid_rows else { return false };
            if n.name != m.name || n.index != m.index {
                return false;
            }
            match n.name {
                "allgather" => n.rank / rows == m.rank / rows,
                "reduce" => n.rank % rows == m.rank % rows,
                _ => false,
            }
        };

        // Longest chain by *covered time*: walking an edge u -> v adds
        // v's interval minus its overlap with u's chain end, so a chain
        // is measured like the union of its spans. This pins the
        // invariants structurally: every lane's own program-order chain
        // is a candidate (so the result is at least the busiest lane's
        // covered time, i.e. >= max_stage), and the increments telescope
        // against non-decreasing end times (so it never exceeds wall).
        let order = {
            let mut ix: Vec<usize> = (0..nodes.len()).collect();
            ix.sort_by_key(|&i| (nodes[i].end_ns, nodes[i].start_ns, i));
            ix
        };
        let mut dp = vec![0u64; nodes.len()];
        let mut pred: Vec<Option<(usize, EdgeKind)>> = vec![None; nodes.len()];
        let mut done = vec![false; nodes.len()];
        for &v in &order {
            let c = &nodes[v];
            dp[v] = c.end_ns - c.start_ns;
            let mut cands: Vec<(usize, EdgeKind)> = Vec::new();
            if let Some(p) = c.lane_pred {
                cands.push((p, EdgeKind::Program));
            }
            for (u, n) in nodes.iter().enumerate() {
                if u == v {
                    continue;
                }
                if let Some(d) = c.deps {
                    if n.rank == c.rank
                        && n.name == d.stage
                        && n.index.is_some_and(|ix| d.contains(ix))
                    {
                        cands.push((u, EdgeKind::Dependency));
                    }
                }
                if collective_group(c, n) {
                    cands.push((u, EdgeKind::Collective));
                }
                if c.is_wait && n.rank == c.rank && n.role != c.role {
                    cands.push((u, EdgeKind::Release));
                }
            }
            for (u, kind) in cands {
                // Only earlier-finishing work can gate this span.
                if !done[u] || nodes[u].end_ns > c.end_ns {
                    continue;
                }
                let gain = c.end_ns - nodes[u].end_ns.max(c.start_ns);
                if dp[u] + gain > dp[v] {
                    dp[v] = dp[u] + gain;
                    pred[v] = Some((u, kind));
                }
            }
            done[v] = true;
        }
        // Heaviest chain; end-time order breaks ties toward the chain
        // that finishes last (the one gating the wall).
        let mut term = order[0];
        for &v in &order {
            if dp[v] >= dp[term] {
                term = v;
            }
        }
        let mut chain_rev: Vec<(usize, EdgeKind)> = Vec::new();
        let mut cur = term;
        loop {
            match pred[cur] {
                Some((u, kind)) => {
                    chain_rev.push((cur, kind));
                    cur = u;
                }
                None => {
                    chain_rev.push((cur, EdgeKind::Origin));
                    break;
                }
            }
        }
        chain_rev.reverse();
        let critical_path: Vec<PathStep> = chain_rev
            .iter()
            .map(|&(i, edge)| {
                let n = &nodes[i];
                PathStep {
                    rank: n.rank,
                    role: n.role,
                    name: n.name,
                    index: n.index,
                    start_ns: n.start_ns,
                    dur_ns: n.end_ns - n.start_ns,
                    edge,
                }
            })
            .collect();
        let critical_path_ns = dp[term];

        let overlap_efficiency = if wall_ns == 0 {
            1.0
        } else {
            max_stage_ns as f64 / wall_ns as f64
        };

        Some(PipelineAnalysis {
            start_ns: t0,
            wall_ns,
            max_stage_ns,
            max_stage_lane,
            critical_path_ns,
            overlap_efficiency,
            lanes,
            stalls,
            critical_path,
        })
    }

    /// Wall seconds covered by the capture.
    pub fn wall_secs(&self) -> f64 {
        self.wall_ns as f64 / 1e9
    }

    /// Busiest-lane seconds: the measured side of Eq. 19's `max(...)`.
    pub fn max_stage_secs(&self) -> f64 {
        self.max_stage_ns as f64 / 1e9
    }

    /// Critical-path seconds (interval union of the path's spans).
    pub fn critical_path_secs(&self) -> f64 {
        self.critical_path_ns as f64 / 1e9
    }

    /// True when overlap efficiency reaches `min_overlap` — the gate
    /// `tracereport --min-overlap` applies.
    pub fn meets_overlap(&self, min_overlap: f64) -> bool {
        self.overlap_efficiency >= min_overlap
    }

    /// Summed stall seconds across every lane and buffer.
    pub fn total_stall_secs(&self) -> f64 {
        self.stalls.iter().map(|s| s.total_ns).sum::<u64>() as f64 / 1e9
    }

    /// Serialize the complete analysis as one compact JSON object —
    /// the machine-readable twin of [`PipelineAnalysis::report`], used
    /// by `tracereport --format json`. Shares the [`crate::jsonw`]
    /// serializer with the live [`crate::live::MetricsSnapshot`]
    /// frames, so downstream tooling parses one dialect.
    pub fn to_json(&self) -> String {
        let (mr, ml) = self.max_stage_lane;
        let lanes = crate::jsonw::arr(self.lanes.iter().map(|l| {
            let mut o = crate::jsonw::Obj::new();
            o.field_u64("rank", u64::from(l.rank))
                .field_str("role", l.role.as_str())
                .field_u64("busy_ns", l.busy_ns)
                .field_u64("stall_ns", l.stall_ns)
                .field_u64("idle_ns", l.idle_ns)
                .field_f64("busy_frac", l.busy_frac())
                .field_u64("bubbles", l.bubbles.len() as u64);
            o.finish()
        }));
        let stalls = crate::jsonw::arr(self.stalls.iter().map(|s| {
            let mut o = crate::jsonw::Obj::new();
            o.field_u64("rank", u64::from(s.rank))
                .field_str("role", s.role.as_str())
                .field_str("buffer", s.buffer)
                .field_str("kind", s.kind.as_str())
                .field_u64("count", s.count)
                .field_u64("total_ns", s.total_ns)
                .field_u64("max_ns", s.max_ns);
            o.finish()
        }));
        let path = crate::jsonw::arr(self.critical_path.iter().map(|p| {
            let mut o = crate::jsonw::Obj::new();
            o.field_u64("rank", u64::from(p.rank))
                .field_str("role", p.role.as_str())
                .field_str("name", p.name);
            if let Some(ix) = p.index {
                o.field_u64("index", ix);
            }
            o.field_u64("start_ns", p.start_ns)
                .field_u64("dur_ns", p.dur_ns)
                .field_str("edge", p.edge.as_str());
            o.finish()
        }));
        let mut o = crate::jsonw::Obj::new();
        o.field_u64("start_ns", self.start_ns)
            .field_u64("wall_ns", self.wall_ns)
            .field_u64("max_stage_ns", self.max_stage_ns)
            .field_raw("max_stage_lane", &{
                let mut lane = crate::jsonw::Obj::new();
                lane.field_u64("rank", u64::from(mr))
                    .field_str("role", ml.as_str());
                lane.finish()
            })
            .field_u64("critical_path_ns", self.critical_path_ns)
            .field_f64("overlap_efficiency", self.overlap_efficiency)
            .field_raw("lanes", &lanes)
            .field_raw("stalls", &stalls)
            .field_raw("critical_path", &path);
        o.finish()
    }

    /// Render the analysis as a human-readable report: the headline
    /// overlap figure, per-lane utilization, top ring stalls, and the
    /// tail of the critical path.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let (mr, ml) = self.max_stage_lane;
        out.push_str(&format!(
            "pipeline analysis: wall {}, critical path {}, max stage {} (rank {mr} {})\n\
             overlap efficiency: {:.3} (1.0 = wall time collapses to the slowest stage, Eq. 19)\n",
            fmt_ns(self.wall_ns),
            fmt_ns(self.critical_path_ns),
            fmt_ns(self.max_stage_ns),
            ml.as_str(),
            self.overlap_efficiency,
        ));

        out.push_str("\nper-lane utilization:\n");
        let mut rows = vec![[
            "rank".to_string(),
            "role".into(),
            "busy".into(),
            "stall".into(),
            "idle".into(),
            "busy%".into(),
            "bubbles".into(),
        ]];
        for l in &self.lanes {
            rows.push([
                l.rank.to_string(),
                l.role.as_str().into(),
                fmt_ns(l.busy_ns),
                fmt_ns(l.stall_ns),
                fmt_ns(l.idle_ns),
                format!("{:.1}", 100.0 * l.busy_frac()),
                l.bubbles.len().to_string(),
            ]);
        }
        push_table(&mut out, &rows);

        if self.stalls.is_empty() {
            out.push_str("\nring stalls: none recorded\n");
        } else {
            out.push_str("\ntop ring stalls:\n");
            let mut rows = vec![[
                "rank".to_string(),
                "role".into(),
                "buffer".into(),
                "side".into(),
                "waits".into(),
                "total".into(),
                "max".into(),
            ]];
            for s in self.stalls.iter().take(8) {
                rows.push([
                    s.rank.to_string(),
                    s.role.as_str().into(),
                    s.buffer.into(),
                    s.kind.as_str().into(),
                    s.count.to_string(),
                    fmt_ns(s.total_ns),
                    fmt_ns(s.max_ns),
                ]);
            }
            push_table(&mut out, &rows);
            if self.stalls.len() > 8 {
                out.push_str(&format!("  ... {} more\n", self.stalls.len() - 8));
            }
        }

        let show = 12usize;
        let skip = self.critical_path.len().saturating_sub(show);
        out.push_str(&format!(
            "\ncritical path ({} steps{}):\n",
            self.critical_path.len(),
            if skip > 0 {
                format!(", last {show}")
            } else {
                String::new()
            }
        ));
        for step in self.critical_path.iter().skip(skip) {
            let idx = step.index.map(|i| format!("[{i}]")).unwrap_or_default();
            out.push_str(&format!(
                "  rank {} {:<14} {}{} {} @ +{}  <- {}\n",
                step.rank,
                step.role.as_str(),
                step.name,
                idx,
                fmt_ns(step.dur_ns),
                fmt_ns(step.start_ns - self.start_ns),
                step.edge.as_str(),
            ));
        }
        out
    }
}

impl fmt::Display for PipelineAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

/// Append rows as a column-aligned table (first column left-aligned).
fn push_table<const N: usize>(out: &mut String, rows: &[[String; N]]) {
    let mut widths = [0usize; N];
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    for row in rows {
        out.push_str("  ");
        for (i, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<w$}"));
            } else {
                out.push_str(&format!("{cell:>w$}"));
            }
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MetricStat, SpanDeps};

    fn ev(
        rank: u32,
        role: ThreadRole,
        name: &'static str,
        start: u64,
        end: u64,
        index: u64,
        deps: Option<SpanDeps>,
    ) -> SpanEvent {
        SpanEvent {
            rank,
            role,
            name,
            start_ns: start,
            dur_ns: end - start,
            index: Some(index),
            bytes: None,
            deps,
        }
    }

    fn dep(stage: &'static str, lo: u64, hi: u64) -> Option<SpanDeps> {
        Some(SpanDeps { stage, lo, hi })
    }

    /// A 1-rank pipeline where the filter lane is busy the whole run:
    /// the textbook perfectly overlapped case.
    fn perfect_pipeline() -> TraceData {
        let mut data = TraceData::default();
        for i in 0..4u64 {
            data.events.push(ev(
                0,
                ThreadRole::Filter,
                "filter",
                i * 10,
                (i + 1) * 10,
                i,
                None,
            ));
            data.events.push(ev(
                0,
                ThreadRole::Main,
                "allgather",
                (i + 1) * 10 - 5,
                (i + 1) * 10,
                i,
                dep("filter", i, i),
            ));
        }
        data
    }

    #[test]
    fn empty_capture_yields_none() {
        assert!(PipelineAnalysis::from_trace(&TraceData::default()).is_none());
    }

    #[test]
    fn perfect_pipeline_has_unit_efficiency() {
        let a = PipelineAnalysis::from_trace(&perfect_pipeline()).unwrap();
        assert_eq!(a.wall_ns, 40);
        assert_eq!(a.max_stage_ns, 40);
        assert_eq!(a.max_stage_lane, (0, ThreadRole::Filter));
        assert!((a.overlap_efficiency - 1.0).abs() < 1e-12);
        assert!(a.meets_overlap(1.0));
        let filter_lane = &a.lanes[0];
        assert_eq!(filter_lane.role, ThreadRole::Filter);
        assert_eq!(filter_lane.busy_ns, 40);
        assert_eq!(filter_lane.idle_ns, 0);
        assert!(filter_lane.bubbles.is_empty());
    }

    #[test]
    fn bubbles_account_for_all_uncovered_time() {
        let mut data = perfect_pipeline();
        // Punch a hole in the main lane: allgather 2 (35..40) removed.
        data.events
            .retain(|e| !(e.name == "allgather" && e.index == Some(2)));
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        for l in &a.lanes {
            let bubble_total: u64 = l.bubbles.iter().map(|(s, e)| e - s).sum();
            assert_eq!(
                bubble_total,
                a.wall_ns - l.busy_ns - l.stall_ns,
                "lane {:?}",
                (l.rank, l.role)
            );
        }
    }

    #[test]
    fn ordering_invariant_holds() {
        let a = PipelineAnalysis::from_trace(&perfect_pipeline()).unwrap();
        assert!(a.max_stage_ns <= a.critical_path_ns);
        assert!(a.critical_path_ns <= a.wall_ns);
    }

    #[test]
    fn dependency_edges_reach_the_producer() {
        let a = PipelineAnalysis::from_trace(&perfect_pipeline()).unwrap();
        // Last node is allgather 3; its chain must include filter spans.
        assert!(a
            .critical_path
            .iter()
            .any(|s| s.name == "filter" && s.role == ThreadRole::Filter));
        assert!(a
            .critical_path
            .iter()
            .any(|s| s.edge == EdgeKind::Dependency || s.edge == EdgeKind::Program));
        assert_eq!(a.critical_path[0].edge, EdgeKind::Origin);
        // Chronological order.
        for w in a.critical_path.windows(2) {
            assert!(w[0].start_ns + w[0].dur_ns <= w[1].start_ns + w[1].dur_ns);
        }
    }

    #[test]
    fn wait_spans_count_as_stall_not_busy() {
        let mut data = TraceData::default();
        data.events
            .push(ev(0, ThreadRole::Filter, "filter", 0, 60, 0, None));
        data.events.push(ev(
            0,
            ThreadRole::Main,
            "ring.gather.pop_wait",
            0,
            50,
            0,
            None,
        ));
        data.events.push(ev(
            0,
            ThreadRole::Main,
            "allgather",
            50,
            60,
            0,
            dep("filter", 0, 0),
        ));
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        let main = a.lanes.iter().find(|l| l.role == ThreadRole::Main).unwrap();
        assert_eq!(main.stall_ns, 50);
        assert_eq!(main.busy_ns, 10);
        assert_eq!(main.idle_ns, 0);
        assert_eq!(a.stalls.len(), 1);
        let s = &a.stalls[0];
        assert_eq!(s.buffer, "ring.gather");
        assert_eq!(s.kind, StallKind::Pop);
        assert_eq!(s.count, 1);
        assert_eq!(s.total_ns, 50);
        // The busiest lane is filter (60 ns busy), and the wait keeps
        // main's efficiency contribution honest.
        assert_eq!(a.max_stage_lane, (0, ThreadRole::Filter));
        assert!((a.overlap_efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn release_edges_cross_lanes_through_waits() {
        let mut data = TraceData::default();
        // bp lane busy 0..80; main waits on the bp ring until bp finishes
        // a batch, then pushes.
        data.events.push(ev(
            0,
            ThreadRole::Backprojection,
            "bp.batch",
            0,
            80,
            0,
            None,
        ));
        data.events.push(ev(
            0,
            ThreadRole::Main,
            "ring.bp.push_wait",
            10,
            80,
            1,
            None,
        ));
        data.events
            .push(ev(0, ThreadRole::Main, "allgather", 80, 90, 1, None));
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        // Path: allgather <- program pred (the wait) <- release (bp.batch).
        let names: Vec<_> = a.critical_path.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["bp.batch", "ring.bp.push_wait", "allgather"]);
        assert_eq!(a.critical_path[1].edge, EdgeKind::Release);
    }

    #[test]
    fn collective_peers_join_through_grid_gauges() {
        let mut data = TraceData::default();
        // 2x1 grid (rows=2): ranks 0 and 1 share a column. Rank 1's
        // allgather 0 is the slow peer gating rank 0's.
        data.events
            .push(ev(0, ThreadRole::Main, "allgather", 50, 60, 0, None));
        data.events
            .push(ev(1, ThreadRole::Main, "allgather", 0, 55, 0, None));
        data.gauges.push(MetricStat {
            rank: 0,
            role: ThreadRole::Main,
            name: "grid.rows",
            value: 2,
        });
        let a = PipelineAnalysis::from_trace(&data).unwrap();
        let ranks: Vec<_> = a.critical_path.iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![1, 0]);
        assert_eq!(a.critical_path[1].edge, EdgeKind::Collective);
    }

    #[test]
    fn json_export_parses_and_carries_the_headline_numbers() {
        let a = PipelineAnalysis::from_trace(&perfect_pipeline()).unwrap();
        let json = a.to_json();
        let v = crate::chrome::json::parse(&json).expect("analysis json parses");
        assert_eq!(
            v.get("wall_ns").and_then(|x| x.as_f64()),
            Some(a.wall_ns as f64)
        );
        assert_eq!(
            v.get("overlap_efficiency").and_then(|x| x.as_f64()),
            Some(a.overlap_efficiency)
        );
        let lane = v.get("max_stage_lane").expect("lane object");
        assert_eq!(lane.get("role").and_then(|x| x.as_str()), Some("filter"));
        let lanes = v.get("lanes").and_then(|x| x.as_array()).unwrap();
        assert_eq!(lanes.len(), a.lanes.len());
        let path = v.get("critical_path").and_then(|x| x.as_array()).unwrap();
        assert_eq!(path.len(), a.critical_path.len());
        assert_eq!(path[0].get("edge").and_then(|x| x.as_str()), Some("origin"));
    }

    #[test]
    fn report_mentions_the_headline_numbers() {
        let a = PipelineAnalysis::from_trace(&perfect_pipeline()).unwrap();
        let r = a.report();
        assert!(r.contains("overlap efficiency"));
        assert!(r.contains("per-lane utilization"));
        assert!(r.contains("critical path"));
        assert!(r.contains("filter"));
        assert_eq!(r, format!("{a}"));
    }
}
