//! The workspace's one blessed monotonic clock.
//!
//! Every wall-clock read outside this crate flows through [`now`] so that
//! trace capture, replay and offline analysis stay attributable to a
//! single time source. The repo-wide `raw-clock` lint (`cargo xtask
//! lint`) enforces this: `Instant::now()` and `SystemTime` are banned
//! everywhere except `ct-obs` itself and the `bench` harness, which keeps
//! "who measured what, when" auditable and leaves one seam to virtualise
//! time behind if deterministic replay ever needs it.

pub use std::time::{Duration, Instant};

/// Read the monotonic clock.
///
/// Exactly `Instant::now()` today; the indirection is the point — callers
/// that time work (`ct-par` stage timers, `ct-bp` tile reports, `ct-comm`
/// receive deadlines, the distributed driver) name this function instead
/// of the std clock, so the lint can prove no stray time source feeds the
/// pipeline's observations.
#[inline]
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Read the wall clock as unix milliseconds.
///
/// The perf trajectory store (`ct-perfdb`) timestamps run records with
/// wall time so cross-run trends line up across machines and restarts —
/// a monotonic instant is meaningless outside its own process. This is
/// the one sanctioned `SystemTime` read; producers (`gups --record`,
/// `tracereport --record`, the distributed example) take the value from
/// here instead of touching `SystemTime` themselves, keeping the
/// `raw-clock` lint's single-time-source guarantee intact.
#[must_use]
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(a.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn unix_millis_is_past_2020() {
        // 2020-01-01 in unix ms; a sane host clock is well past it.
        assert!(unix_millis() > 1_577_836_800_000);
    }
}
