//! Thread-bound ambient track.
//!
//! Leaf substrates — `ct-pfs` above all — sit several call layers below
//! the pipeline threads that own a [`Track`], and threading a recording
//! handle through every `read_bytes`/`write_bytes` signature would bleed
//! observability into APIs that have nothing to do with it. Instead, a
//! pipeline thread installs its track as the thread's *current* track for
//! a scope, and leaf code records against whatever is current:
//!
//! ```
//! use ct_obs::{current, Recorder, ThreadRole};
//!
//! let rec = Recorder::trace();
//! let track = rec.track(0, ThreadRole::Filter);
//! {
//!     let _guard = current::set_current(&track);
//!     // ... deep inside a substrate call:
//!     let mut sp = current::span("pfs.read");
//!     sp.set_bytes(4096);
//! }
//! drop(track);
//! assert_eq!(rec.collect().events.len(), 1);
//! ```
//!
//! With no current track installed (or a disabled one), every function
//! here is a no-op: one thread-local lookup, no locks, no allocation.

use crate::recorder::{Span, Track};
use std::cell::RefCell;

thread_local! {
    static CURRENT: RefCell<Option<Track>> = const { RefCell::new(None) };
}

/// Install `track` as this thread's current track for the guard's
/// lifetime; the previously current track (if any) is restored on drop,
/// so scopes nest. Installing a disabled track clears the slot for the
/// scope — leaf spans then record nothing.
#[must_use = "the track is only current while the guard lives"]
pub fn set_current(track: &Track) -> CurrentGuard {
    let install = track.is_enabled().then(|| track.clone());
    let prev = CURRENT.with(|c| c.replace(install));
    CurrentGuard { prev }
}

/// Restores the previously current track when dropped.
#[derive(Debug)]
pub struct CurrentGuard {
    prev: Option<Track>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// True when an enabled track is current on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Open a span on the current track, or a disabled span when none is
/// installed.
pub fn span(name: &'static str) -> Span {
    CURRENT.with(|c| match c.borrow().as_ref() {
        Some(track) => track.span(name),
        None => Span::disabled(),
    })
}

/// Add to a counter on the current track (no-op without one).
pub fn counter_add(name: &'static str, delta: u64) {
    CURRENT.with(|c| {
        if let Some(track) = c.borrow().as_ref() {
            track.counter_add(name, delta);
        }
    });
}

/// Raise a high-water gauge on the current track (no-op without one).
pub fn gauge_max(name: &'static str, value: u64) {
    CURRENT.with(|c| {
        if let Some(track) = c.borrow().as_ref() {
            track.gauge_max(name, value);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, ThreadRole};

    #[test]
    fn no_current_track_is_inert() {
        assert!(!is_active());
        let sp = span("x");
        assert!(!sp.is_recording());
        counter_add("c", 1);
        gauge_max("g", 1);
    }

    #[test]
    fn spans_record_against_the_installed_track() {
        let rec = Recorder::trace();
        {
            let track = rec.track(3, ThreadRole::Io);
            let _guard = set_current(&track);
            assert!(is_active());
            let mut sp = span("pfs.write");
            sp.set_bytes(256);
            drop(sp);
            counter_add("objects", 1);
        }
        assert!(!is_active());
        let data = rec.collect();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].rank, 3);
        assert_eq!(data.events[0].role, ThreadRole::Io);
        assert_eq!(data.events[0].bytes, Some(256));
        assert_eq!(data.counter(3, "objects"), Some(1));
    }

    #[test]
    fn guards_nest_and_restore() {
        let rec = Recorder::summary();
        let outer = rec.track(0, ThreadRole::Main);
        let inner = rec.track(1, ThreadRole::Io);
        {
            let _g1 = set_current(&outer);
            {
                let _g2 = set_current(&inner);
                let _sp = span("inner");
            }
            let _sp = span("outer");
        }
        drop((outer, inner));
        let data = rec.collect();
        assert!(data.stage(1, ThreadRole::Io, "inner").is_some());
        assert!(data.stage(0, ThreadRole::Main, "outer").is_some());
    }

    #[test]
    fn disabled_track_clears_the_scope() {
        let rec = Recorder::summary();
        let track = rec.track(0, ThreadRole::Main);
        let _g1 = set_current(&track);
        {
            let off = Track::disabled();
            let _g2 = set_current(&off);
            assert!(!is_active());
            let _sp = span("hidden");
        }
        assert!(is_active());
        drop(_g1);
        drop(track);
        assert!(rec.collect().stages.is_empty());
    }

    #[test]
    fn current_is_per_thread() {
        let rec = Recorder::summary();
        let track = rec.track(0, ThreadRole::Main);
        let _guard = set_current(&track);
        std::thread::spawn(|| {
            assert!(!is_active());
        })
        .join()
        .unwrap();
        assert!(is_active());
    }
}
