//! Captured observation data: span events, per-stage aggregates, metrics.
//!
//! [`TraceData`] is the immutable snapshot a [`crate::Recorder`] hands
//! back from `collect()`. It is plain data — exporters ([`crate::chrome`])
//! and report folding ([`TraceData::summary_values`]) are pure functions
//! over it.

use crate::recorder::ThreadRole;

/// The producer-side items a span consumed: an inclusive index range into
/// an upstream stage's spans on the same rank. `filter` span *i* feeding
/// `allgather` op *o* tags the op with `{stage: "filter", lo: i, hi: i}`;
/// a back-projection batch built from AllGather ops 3..=5 tags
/// `{stage: "allgather", lo: 3, hi: 5}`. [`crate::analysis`] turns these
/// tags into dependency-graph edges and [`crate::chrome`] into flow
/// arrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanDeps {
    /// The producing stage's span name.
    pub stage: &'static str,
    /// First producer span index consumed (inclusive).
    pub lo: u64,
    /// Last producer span index consumed (inclusive).
    pub hi: u64,
}

impl SpanDeps {
    /// True when `index` falls inside this dependency range.
    pub fn contains(&self, index: u64) -> bool {
        self.lo <= index && index <= self.hi
    }
}

/// One completed span, retained only in `trace` mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Distributed rank that recorded the span.
    pub rank: u32,
    /// Pipeline thread role within the rank.
    pub role: ThreadRole,
    /// Stage name (static: stage names are compile-time vocabulary).
    pub name: &'static str,
    /// Start, in nanoseconds since the recorder's origin instant.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional projection / batch index tag.
    pub index: Option<u64>,
    /// Optional payload size tag, in bytes.
    pub bytes: Option<u64>,
    /// Optional producer-consumer dependency tag.
    pub deps: Option<SpanDeps>,
}

impl SpanEvent {
    /// End timestamp in nanoseconds since the recorder origin.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A log2-bucketed latency histogram: bucket `i` counts samples with
/// `ilog2(ns) == i` (sub-nanosecond samples land in bucket 0). 64 buckets
/// cover every representable `u64` nanosecond duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { buckets: [0; 64] }
    }
}

impl Hist {
    /// The bucket a duration falls in.
    pub fn bucket_of(ns: u64) -> usize {
        ns.max(1).ilog2() as usize
    }

    /// Lower bound (inclusive) of a bucket, in nanoseconds.
    pub fn bucket_floor_ns(bucket: usize) -> u64 {
        1u64 << bucket.min(63)
    }

    /// Upper bound (exclusive) of a bucket, in nanoseconds. The top
    /// bucket saturates at `u64::MAX`.
    pub fn bucket_ceil_ns(bucket: usize) -> u64 {
        let b = bucket.min(63);
        if b >= 63 {
            u64::MAX
        } else {
            1u64 << (b + 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        if let Some(b) = self.buckets.get_mut(Self::bucket_of(ns)) {
            *b += 1;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.buckets[bucket.min(63)]
    }

    /// `(bucket_floor_ns, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor_ns(i), c))
            .collect()
    }

    /// Estimate the `q`-quantile in nanoseconds.
    ///
    /// The histogram only knows which log2 bucket each sample fell in,
    /// so estimates resolve to one octave. Within the winning bucket the
    /// *midpoint* `(floor + ceiling) / 2` is returned — the unbiased
    /// choice for samples spread inside the bucket, where returning the
    /// floor biased low by up to 2x at coarse buckets.
    ///
    /// Edge behavior (documented contract, covered by tests):
    /// * empty histogram → `0`;
    /// * `q <= 0` → the floor of the first non-empty bucket (the
    ///   smallest value the histogram can still attribute);
    /// * `q >= 1` → the ceiling of the last non-empty bucket (the
    ///   largest it can attribute);
    /// * other `q` → midpoint of the bucket holding the
    ///   `ceil(q * count)`-th sample.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count() == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            let first = self.buckets.iter().position(|&c| c > 0).unwrap_or(0);
            return Self::bucket_floor_ns(first);
        }
        if q >= 1.0 {
            let last = 63 - self.buckets.iter().rev().position(|&c| c > 0).unwrap_or(0);
            return Self::bucket_ceil_ns(last);
        }
        // The rank of the sample we are after, 1-based.
        let total = self.count();
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= target {
                let lo = Self::bucket_floor_ns(i);
                let hi = Self::bucket_ceil_ns(i);
                return lo + (hi - lo) / 2;
            }
        }
        unreachable!("target rank is within total count")
    }
}

/// Render nanoseconds with a unit that keeps 3-4 significant digits.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-`(rank, role, stage)` aggregate, maintained in every enabled mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Distributed rank.
    pub rank: u32,
    /// Pipeline thread role.
    pub role: ThreadRole,
    /// Stage name.
    pub name: &'static str,
    /// Number of spans / observations recorded.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Shortest observation, nanoseconds.
    pub min_ns: u64,
    /// Longest observation, nanoseconds.
    pub max_ns: u64,
    /// Summed payload bytes across spans that tagged bytes.
    pub bytes: u64,
    /// log2 latency histogram of the observations.
    pub hist: Hist,
}

impl StageStat {
    /// Summed duration in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Mean duration in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs() / self.count as f64
        }
    }

    /// Shortest observation in seconds.
    pub fn min_secs(&self) -> f64 {
        self.min_ns as f64 / 1e9
    }

    /// Longest observation in seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }

    /// Median duration estimate from the log2 histogram, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.hist.quantile_ns(0.50)
    }

    /// 95th-percentile duration estimate, nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.hist.quantile_ns(0.95)
    }

    /// 99th-percentile duration estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.hist.quantile_ns(0.99)
    }

    /// Median duration estimate in seconds.
    pub fn p50_secs(&self) -> f64 {
        self.p50_ns() as f64 / 1e9
    }

    /// 95th-percentile duration estimate in seconds.
    pub fn p95_secs(&self) -> f64 {
        self.p95_ns() as f64 / 1e9
    }

    /// 99th-percentile duration estimate in seconds.
    pub fn p99_secs(&self) -> f64 {
        self.p99_ns() as f64 / 1e9
    }
}

/// One counter or gauge reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricStat {
    /// Distributed rank.
    pub rank: u32,
    /// Pipeline thread role that recorded the metric.
    pub role: ThreadRole,
    /// Metric name.
    pub name: &'static str,
    /// Final value (cumulative for counters, high-water for gauges).
    pub value: u64,
}

/// An immutable capture: everything a recorder observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Individual spans (empty outside `trace` mode), sorted by
    /// `(rank, role, start, name, index)`.
    pub events: Vec<SpanEvent>,
    /// Per-stage aggregates, sorted by `(rank, role, name)`.
    pub stages: Vec<StageStat>,
    /// Cumulative counters, sorted by `(rank, role, name)`.
    pub counters: Vec<MetricStat>,
    /// High-water gauges, sorted by `(rank, role, name)`.
    pub gauges: Vec<MetricStat>,
}

impl TraceData {
    /// Build a capture from bare span events, rebuilding the per-stage
    /// aggregates the events imply. This is how the live flight
    /// recorder's bounded span rings become a first-class capture: the
    /// result feeds [`crate::analysis`] and [`crate::chrome`] exactly
    /// like a `Recorder::collect()` trace (counters and gauges are
    /// empty — a span ring does not retain them).
    pub fn from_events(mut events: Vec<SpanEvent>) -> TraceData {
        events.sort_by_key(|e| (e.rank, e.role, e.start_ns, e.name, e.index));
        let mut stages: std::collections::BTreeMap<(u32, ThreadRole, &'static str), StageStat> =
            std::collections::BTreeMap::new();
        for e in &events {
            let s = stages
                .entry((e.rank, e.role, e.name))
                .or_insert_with(|| StageStat {
                    rank: e.rank,
                    role: e.role,
                    name: e.name,
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                    bytes: 0,
                    hist: Hist::default(),
                });
            s.count += 1;
            s.total_ns += e.dur_ns;
            s.min_ns = s.min_ns.min(e.dur_ns);
            s.max_ns = s.max_ns.max(e.dur_ns);
            s.bytes += e.bytes.unwrap_or(0);
            s.hist.record(e.dur_ns);
        }
        TraceData {
            events,
            stages: stages.into_values().collect(),
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.stages.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
    }

    /// Look up one stage aggregate.
    pub fn stage(&self, rank: u32, role: ThreadRole, name: &str) -> Option<&StageStat> {
        self.stages
            .iter()
            .find(|s| s.rank == rank && s.role == role && s.name == name)
    }

    /// A counter's value on one rank, summed over roles.
    pub fn counter(&self, rank: u32, name: &str) -> Option<u64> {
        let mut found = false;
        let mut sum = 0;
        for m in self
            .counters
            .iter()
            .filter(|m| m.rank == rank && m.name == name)
        {
            found = true;
            sum += m.value;
        }
        found.then_some(sum)
    }

    /// A gauge's high-water value on one rank, maxed over roles.
    pub fn gauge(&self, rank: u32, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .filter(|m| m.rank == rank && m.name == name)
            .map(|m| m.value)
            .max()
    }

    /// All distinct stage names, sorted.
    pub fn stage_names(&self) -> Vec<&'static str> {
        let mut names: Vec<_> = self.stages.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// All distinct ranks observed, sorted.
    pub fn ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<_> = self
            .stages
            .iter()
            .map(|s| s.rank)
            .chain(self.events.iter().map(|e| e.rank))
            .chain(self.counters.iter().map(|m| m.rank))
            .chain(self.gauges.iter().map(|m| m.rank))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// Summed duration of `name` across all ranks and roles, seconds.
    pub fn total_secs(&self, name: &str) -> f64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_secs())
            .sum()
    }

    /// The busiest single rank's total for `name`, seconds. This is the
    /// number comparable to a per-rank performance model: ranks run the
    /// stage concurrently, so the slowest rank bounds the pipeline.
    pub fn max_total_secs(&self, name: &str) -> f64 {
        let mut per_rank = std::collections::BTreeMap::new();
        for s in self.stages.iter().filter(|s| s.name == name) {
            *per_rank.entry(s.rank).or_insert(0.0) += s.total_secs();
        }
        per_rank.values().cloned().fold(0.0, f64::max)
    }

    /// Summed payload bytes tagged on `name` spans, all ranks.
    pub fn total_bytes(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.bytes)
            .sum()
    }

    /// The shape of the capture with wall-clock stripped: one
    /// `(rank, role, stage, index)` row per event, sorted. Two runs of
    /// the same deterministic pipeline must produce equal structures even
    /// though their timestamps differ.
    pub fn structure(&self) -> Vec<(u32, &'static str, &'static str, Option<u64>)> {
        let mut rows: Vec<_> = self
            .events
            .iter()
            .map(|e| (e.rank, e.role.as_str(), e.name, e.index))
            .collect();
        rows.sort_unstable();
        rows
    }

    /// One histogram per stage name, merged over every rank and role.
    /// This is what cluster-wide latency percentiles are derived from.
    pub fn merged_hist(&self, name: &str) -> Hist {
        let mut h = Hist::default();
        for s in self.stages.iter().filter(|s| s.name == name) {
            h.merge(&s.hist);
        }
        h
    }

    /// Fold the capture into flat `name -> value` pairs suitable for
    /// `ifdk::report::RunReport::set`. Per stage: `{prefix}{name}.total_secs`
    /// (busiest rank), `.count` (summed), `.max_secs`,
    /// `.p50_secs`/`.p95_secs`/`.p99_secs` (log2-histogram estimates over
    /// all ranks), `.bytes` (summed); plus `{prefix}counter.{name}`
    /// (summed) and `{prefix}gauge.{name}` (maxed) for metrics.
    pub fn summary_values(&self, prefix: &str) -> Vec<(String, f64)> {
        use std::collections::BTreeMap;
        let mut out = Vec::new();
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut maxes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut bytes: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.stages {
            *counts.entry(s.name).or_insert(0) += s.count;
            let m = maxes.entry(s.name).or_insert(0);
            *m = (*m).max(s.max_ns);
            *bytes.entry(s.name).or_insert(0) += s.bytes;
        }
        for name in self.stage_names() {
            out.push((
                format!("{prefix}{name}.total_secs"),
                self.max_total_secs(name),
            ));
            out.push((format!("{prefix}{name}.count"), counts[name] as f64));
            out.push((format!("{prefix}{name}.max_secs"), maxes[name] as f64 / 1e9));
            let hist = self.merged_hist(name);
            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                out.push((
                    format!("{prefix}{name}.{tag}_secs"),
                    hist.quantile_ns(q) as f64 / 1e9,
                ));
            }
            if bytes[name] > 0 {
                out.push((format!("{prefix}{name}.bytes"), bytes[name] as f64));
            }
        }
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        for m in &self.counters {
            *counters.entry(m.name).or_insert(0) += m.value;
        }
        for (name, v) in counters {
            out.push((format!("{prefix}counter.{name}"), v as f64));
        }
        let mut gauges: BTreeMap<&str, u64> = BTreeMap::new();
        for m in &self.gauges {
            let e = gauges.entry(m.name).or_insert(0);
            *e = (*e).max(m.value);
        }
        for (name, v) in gauges {
            out.push((format!("{prefix}gauge.{name}"), v as f64));
        }
        out
    }

    /// Render the per-stage summary as an aligned text table: count,
    /// busiest-rank total, mean, log2-histogram p50/p95/p99, max and
    /// payload bytes per stage name. The counterpart of `summary_values`
    /// for human eyes.
    pub fn summary_table(&self) -> String {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        let mut maxes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut bytes: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.stages {
            *counts.entry(s.name).or_insert(0) += s.count;
            *totals.entry(s.name).or_insert(0) += s.total_ns;
            let m = maxes.entry(s.name).or_insert(0);
            *m = (*m).max(s.max_ns);
            *bytes.entry(s.name).or_insert(0) += s.bytes;
        }
        let mut rows: Vec<[String; 9]> = vec![[
            "stage".into(),
            "count".into(),
            "busiest".into(),
            "mean".into(),
            "p50".into(),
            "p95".into(),
            "p99".into(),
            "max".into(),
            "bytes".into(),
        ]];
        for name in self.stage_names() {
            let n = counts[name];
            let hist = self.merged_hist(name);
            let mean = totals[name].checked_div(n).unwrap_or(0);
            rows.push([
                name.to_string(),
                n.to_string(),
                format!("{:.3} s", self.max_total_secs(name)),
                fmt_ns(mean),
                fmt_ns(hist.quantile_ns(0.50)),
                fmt_ns(hist.quantile_ns(0.95)),
                fmt_ns(hist.quantile_ns(0.99)),
                fmt_ns(maxes[name]),
                if bytes[name] > 0 {
                    bytes[name].to_string()
                } else {
                    "-".into()
                },
            ]);
        }
        let mut widths = [0usize; 9];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &rows {
            for (i, (cell, w)) in row.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("{cell:>w$}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, ThreadRole};

    #[test]
    fn hist_buckets() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 0);
        assert_eq!(Hist::bucket_of(2), 1);
        assert_eq!(Hist::bucket_of(1024), 10);
        assert_eq!(Hist::bucket_of(u64::MAX), 63);
        assert_eq!(Hist::bucket_floor_ns(10), 1024);
        let mut h = Hist::default();
        h.record(3);
        h.record(1000);
        h.record(1024);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(9), 1); // 512..1024 holds 1000
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.nonzero(), vec![(2, 1), (512, 1), (1024, 1)]);
        let mut h2 = Hist::default();
        h2.record(3);
        h2.merge(&h);
        assert_eq!(h2.bucket_count(1), 2);
    }

    #[test]
    fn quantile_edges_and_midpoint() {
        // Empty histogram: every quantile is 0.
        let empty = Hist::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile_ns(q), 0);
        }

        // One sample at 1000 ns lands in bucket 9 (512..1024):
        // q=0 → bucket floor, q=1 → bucket ceiling, interior → midpoint.
        let mut one = Hist::default();
        one.record(1000);
        assert_eq!(one.quantile_ns(0.0), 512);
        assert_eq!(one.quantile_ns(0.5), 768);
        assert_eq!(one.quantile_ns(1.0), 1024);
        // Out-of-range q clamps to the same edges.
        assert_eq!(one.quantile_ns(-3.0), 512);
        assert_eq!(one.quantile_ns(7.0), 1024);

        // Two buckets: p50 resolves to the low bucket's midpoint, p99 to
        // the high bucket's midpoint, q=0/q=1 to the extreme bounds.
        let mut two = Hist::default();
        two.record(3); // bucket 1: 2..4
        two.record(1000); // bucket 9: 512..1024
        assert_eq!(two.quantile_ns(0.5), 3); // midpoint of 2..4
        assert_eq!(two.quantile_ns(0.99), 768);
        assert_eq!(two.quantile_ns(0.0), 2);
        assert_eq!(two.quantile_ns(1.0), 1024);

        // The midpoint can never bias below the bucket floor.
        let mut h = Hist::default();
        h.record(600);
        assert!(h.quantile_ns(0.5) >= Hist::bucket_floor_ns(Hist::bucket_of(600)));

        // Top bucket saturates instead of overflowing.
        let mut top = Hist::default();
        top.record(u64::MAX);
        assert_eq!(top.quantile_ns(1.0), u64::MAX);
        assert!(top.quantile_ns(0.5) >= 1u64 << 63);
    }

    #[test]
    fn from_events_rebuilds_aggregates() {
        let ev = |start: u64, dur: u64, idx: u64| SpanEvent {
            rank: 1,
            role: ThreadRole::Backprojection,
            name: "backprojection",
            start_ns: start,
            dur_ns: dur,
            index: Some(idx),
            bytes: Some(10),
            deps: None,
        };
        // Deliberately unsorted input: from_events must sort.
        let data = TraceData::from_events(vec![ev(500, 40, 1), ev(100, 60, 0)]);
        assert_eq!(data.events[0].index, Some(0));
        let s = data
            .stage(1, ThreadRole::Backprojection, "backprojection")
            .unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 100);
        assert_eq!(s.min_ns, 40);
        assert_eq!(s.max_ns, 60);
        assert_eq!(s.bytes, 20);
        assert_eq!(s.hist.count(), 2);
        assert!(data.counters.is_empty() && data.gauges.is_empty());
    }

    #[test]
    fn stage_stat_suffixed_accessors_agree() {
        let data = sample_capture();
        let s = data.stage(0, ThreadRole::Main, "allgather").unwrap();
        assert_eq!(s.mean_ns(), s.total_ns / s.count);
        assert!((s.min_secs() - s.min_ns as f64 / 1e9).abs() < 1e-15);
        assert!((s.max_secs() - s.max_ns as f64 / 1e9).abs() < 1e-15);
        assert!((s.p50_secs() - s.p50_ns() as f64 / 1e9).abs() < 1e-15);
        assert!((s.p95_secs() - s.p95_ns() as f64 / 1e9).abs() < 1e-15);
        assert!((s.p99_secs() - s.p99_ns() as f64 / 1e9).abs() < 1e-15);
    }

    fn sample_capture() -> TraceData {
        let rec = Recorder::trace();
        for rank in 0..2u32 {
            let track = rec.track(rank, ThreadRole::Main);
            for o in 0..3u64 {
                let mut sp = track.span("allgather").with_index(o);
                sp.set_bytes(100);
            }
            track.counter_add("msgs", 3);
            track.gauge_max("ring", rank as u64 + 1);
        }
        rec.collect()
    }

    #[test]
    fn lookups_and_totals() {
        let data = sample_capture();
        assert!(!data.is_empty());
        assert_eq!(data.ranks(), vec![0, 1]);
        assert_eq!(data.stage_names(), vec!["allgather"]);
        assert_eq!(
            data.stage(0, ThreadRole::Main, "allgather").unwrap().count,
            3
        );
        assert_eq!(data.total_bytes("allgather"), 600);
        assert_eq!(data.counter(0, "msgs"), Some(3));
        assert_eq!(data.counter(0, "absent"), None);
        assert_eq!(data.gauge(1, "ring"), Some(2));
        assert!(data.total_secs("allgather") >= data.max_total_secs("allgather"));
        assert!(data.max_total_secs("allgather") > 0.0);
    }

    #[test]
    fn structure_strips_time_but_keeps_shape() {
        let a = sample_capture();
        let b = sample_capture();
        // Timestamps differ between the two captures...
        assert_eq!(a.events.len(), b.events.len());
        // ...but the structure is identical.
        assert_eq!(a.structure(), b.structure());
        assert_eq!(a.structure().len(), 6);
        assert_eq!(a.structure()[0], (0, "main", "allgather", Some(0)));
    }

    #[test]
    fn summary_values_fold() {
        let data = sample_capture();
        let vals = data.summary_values("obs.");
        let get = |k: &str| {
            vals.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing key {k} in {vals:?}"))
        };
        assert_eq!(get("obs.allgather.count"), 6.0);
        assert_eq!(get("obs.allgather.bytes"), 600.0);
        assert!(get("obs.allgather.total_secs") > 0.0);
        assert!(get("obs.allgather.max_secs") > 0.0);
        assert_eq!(get("obs.counter.msgs"), 6.0);
        assert_eq!(get("obs.gauge.ring"), 2.0);
    }

    #[test]
    fn stage_stat_means() {
        let data = sample_capture();
        let s = data.stage(1, ThreadRole::Main, "allgather").unwrap();
        assert!(s.mean_secs() <= s.total_secs());
        assert!((s.mean_secs() * s.count as f64 - s.total_secs()).abs() < 1e-12);
    }
}
