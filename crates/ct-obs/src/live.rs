//! Live telemetry: in-flight metrics for a *running* reconstruction.
//!
//! Everything else in `ct-obs` reports after the fact — a capture is
//! collected once the run completes and analyzed offline. This module is
//! the always-on counterpart, built for the ROADMAP's
//! reconstruction-as-a-service and self-tuning directions, which need
//! the pipeline to report on itself while it runs:
//!
//! * [`LiveRegistry`] — a lock-light registry of per-stage completion
//!   cells ([`StageCell`]: atomic counters + a log2 histogram), live
//!   ring-buffer probes ([`RingProbe`] reading [`RingLiveState`]) and
//!   named counters/gauges. A sampler periodically folds it into
//!   versioned [`MetricsSnapshot`] frames, streamed as JSONL
//!   ([`MetricsSnapshot::to_json`]) and renderable as a Prometheus-style
//!   text exposition ([`MetricsSnapshot::to_prometheus`]).
//! * [`FlightRecorder`] — a bounded drop-oldest ring of the most recent
//!   completed spans per `(rank, role)` lane, always on in O(capacity)
//!   memory, dumpable at any moment into an ordinary
//!   [`TraceData`] ([`FlightRecorder::dump`]) so [`crate::analysis`]
//!   works on live runs without unbounded capture.
//! * [`LiveSession`] — the sampler thread: emits one snapshot per
//!   period, runs the **stall watchdog** (any ring whose in-flight
//!   push/pop wait exceeds a deadline trips it, capturing a flight dump
//!   with ring attribution and recording a `watchdog.trip` event), and
//!   returns a [`LiveOutcome`] when stopped.
//! * **Progress/ETA** — [`LiveRegistry::plan_stage`] declares each
//!   stage's expected item count (and optionally a model-predicted
//!   aggregate busy time, from `ct-perfmodel` upstream); snapshots then
//!   carry percent-complete, an ETA and per-stage live model-vs-measured
//!   divergence ([`ProgressSnapshot`]).
//!
//! Both hooks attach to a [`Recorder`] (see [`Recorder::attach_live`]);
//! spans recorded through the normal [`crate::Track`] machinery feed the
//! registry and the flight recorder with no extra instrumentation at the
//! call sites.

pub use crate::analysis::StallKind;

use crate::clock::{Duration, Instant};
use crate::jsonw::{arr, Obj};
use crate::recorder::{Recorder, ThreadRole};
use crate::trace::{Hist, SpanEvent, TraceData};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Version tag on every [`MetricsSnapshot`] frame; consumers (the
/// `monitor` bin, CI) reject frames from a different schema.
pub const SNAPSHOT_VERSION: u64 = 1;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicked pipeline thread must not take live telemetry with it.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-stage live completion cell: how many items finished, how much
/// busy time they took, and their latency distribution. All-atomic on
/// the write path except the histogram, which takes a per-stage mutex
/// held for a few instructions.
#[derive(Debug, Default)]
pub struct StageCell {
    done: AtomicU64,
    busy_ns: AtomicU64,
    planned: AtomicU64,
    /// `f64::to_bits` of the predicted aggregate busy seconds (0 bits =
    /// no prediction).
    predicted_bits: AtomicU64,
    hist: Mutex<Hist>,
}

impl StageCell {
    /// Record one completed item of `dur_ns`.
    pub fn record(&self, dur_ns: u64) {
        self.record_batch(1, dur_ns)
    }

    /// Record `n` completed items that together took `dur_ns` (one
    /// histogram sample for the whole batch).
    pub fn record_batch(&self, n: u64, dur_ns: u64) {
        self.done.fetch_add(n, Relaxed);
        self.busy_ns.fetch_add(dur_ns, Relaxed);
        lock(&self.hist).record(dur_ns);
    }

    /// Items completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Relaxed)
    }

    /// Summed busy nanoseconds so far.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns.load(Relaxed)
    }

    /// Expected item count (0 = unplanned).
    pub fn planned(&self) -> u64 {
        self.planned.load(Relaxed)
    }

    /// Model-predicted aggregate busy seconds, if declared.
    pub fn predicted_secs(&self) -> Option<f64> {
        let bits = self.predicted_bits.load(Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    fn set_plan(&self, planned: u64, predicted_secs: Option<f64>) {
        self.planned.store(planned, Relaxed);
        self.predicted_bits
            .store(predicted_secs.map_or(0, f64::to_bits), Relaxed);
    }
}

/// One ring buffer's live state, as read by a [`RingProbe`]. Plain data:
/// `ct-obs` defines the shape, `ct_sync::ring::RingBuffer::live_state`
/// fills it (the layering runs strictly upward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingLiveState {
    /// Ring capacity, slots.
    pub capacity: usize,
    /// Current occupancy, slots.
    pub len: usize,
    /// High-water occupancy since creation.
    pub high_water: usize,
    /// Completed producer stalls (blocked pushes).
    pub push_stalls: u64,
    /// Completed consumer stalls (blocked pops).
    pub pop_stalls: u64,
    /// Summed completed push-stall time, nanoseconds.
    pub push_stall_ns: u64,
    /// Summed completed pop-stall time, nanoseconds.
    pub pop_stall_ns: u64,
    /// Longest single completed push stall, nanoseconds.
    pub max_push_stall_ns: u64,
    /// Longest single completed pop stall, nanoseconds.
    pub max_pop_stall_ns: u64,
    /// How long the currently blocked producer (if any) has been
    /// waiting, nanoseconds. 0 when no producer is blocked.
    pub cur_push_wait_ns: u64,
    /// How long the currently blocked consumer (if any) has been
    /// waiting, nanoseconds. 0 when no consumer is blocked.
    pub cur_pop_wait_ns: u64,
}

impl RingLiveState {
    /// Summed completed push-stall time in seconds.
    pub fn push_stall_secs(&self) -> f64 {
        self.push_stall_ns as f64 / 1e9
    }

    /// Summed completed pop-stall time in seconds.
    pub fn pop_stall_secs(&self) -> f64 {
        self.pop_stall_ns as f64 / 1e9
    }

    /// The current in-flight wait for one side, nanoseconds.
    pub fn cur_wait_ns(&self, kind: StallKind) -> u64 {
        match kind {
            StallKind::Push => self.cur_push_wait_ns,
            StallKind::Pop => self.cur_pop_wait_ns,
        }
    }

    /// The worst wait this ring has seen or is seeing: the max over
    /// completed stall maxima and the current in-flight waits. This is
    /// what `monitor --max-stall-ms` gates on.
    pub fn worst_wait_ns(&self) -> u64 {
        self.max_push_stall_ns
            .max(self.max_pop_stall_ns)
            .max(self.cur_push_wait_ns)
            .max(self.cur_pop_wait_ns)
    }
}

/// A named closure that reads one ring's [`RingLiveState`]. Registered
/// via [`LiveRegistry::watch_ring`]; sampled by the sampler thread.
#[derive(Clone)]
pub struct RingProbe {
    name: String,
    read: Arc<dyn Fn() -> RingLiveState + Send + Sync>,
}

impl RingProbe {
    /// Wrap a state-reading closure under `name`.
    pub fn new(
        name: impl Into<String>,
        read: impl Fn() -> RingLiveState + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            read: Arc::new(read),
        }
    }

    /// The probe's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read the ring's current state.
    pub fn read(&self) -> RingLiveState {
        (self.read)()
    }
}

impl fmt::Debug for RingProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingProbe")
            .field("name", &self.name)
            .finish()
    }
}

/// One watchdog trip: a ring lane exceeded the stall deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// Snapshot sequence number the trip was detected in.
    pub seq: u64,
    /// Time since registry origin, nanoseconds.
    pub t_ns: u64,
    /// The ring probe's name.
    pub ring: String,
    /// Which side was blocked.
    pub kind: StallKind,
    /// The in-flight wait observed, nanoseconds.
    pub wait_ns: u64,
}

#[derive(Debug)]
struct RegistryInner {
    origin: Instant,
    seq: AtomicU64,
    trip_count: AtomicU64,
    stages: Mutex<BTreeMap<String, Arc<StageCell>>>,
    rings: Mutex<Vec<RingProbe>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    trips: Mutex<Vec<WatchdogTrip>>,
    trip_dump: Mutex<Option<TraceData>>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        Self {
            origin: crate::clock::now(),
            seq: AtomicU64::new(0),
            trip_count: AtomicU64::new(0),
            stages: Mutex::new(BTreeMap::new()),
            rings: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            trips: Mutex::new(Vec::new()),
            trip_dump: Mutex::new(None),
        }
    }
}

/// The live-metrics registry: cheap-to-clone handle shared by the
/// pipeline threads (writers) and the sampler (reader).
#[derive(Debug, Clone, Default)]
pub struct LiveRegistry {
    inner: Arc<RegistryInner>,
}

impl LiveRegistry {
    /// A fresh registry; its clock origin is "now".
    pub fn new() -> Self {
        Self::default()
    }

    /// Nanoseconds since the registry was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.inner.origin.elapsed().as_nanos() as u64
    }

    /// Get-or-create the completion cell for `name`. Writers fetch the
    /// cell once and record through the returned handle.
    pub fn stage(&self, name: &str) -> Arc<StageCell> {
        let mut stages = lock(&self.inner.stages);
        Arc::clone(
            stages
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(StageCell::default())),
        )
    }

    /// Declare a stage's expected item count and (optionally) its
    /// model-predicted **aggregate** busy seconds — the per-participant
    /// model time summed over every rank/thread feeding this cell, so
    /// live divergence compares like with like.
    pub fn plan_stage(&self, name: &str, planned: u64, predicted_secs: Option<f64>) {
        self.stage(name).set_plan(planned, predicted_secs);
    }

    /// Register a ring probe for sampling and watchdog checks.
    pub fn watch_ring(&self, probe: RingProbe) {
        lock(&self.inner.rings).push(probe);
    }

    /// Get-or-create a named cumulative counter.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut counters = lock(&self.inner.counters);
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Get-or-create a named high-water gauge (update with `fetch_max`).
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut gauges = lock(&self.inner.gauges);
        Arc::clone(
            gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Watchdog trips recorded so far.
    pub fn trip_count(&self) -> u64 {
        self.inner.trip_count.load(Relaxed)
    }

    /// All watchdog trips, in detection order.
    pub fn trips(&self) -> Vec<WatchdogTrip> {
        lock(&self.inner.trips).clone()
    }

    /// The flight-recorder dump captured at the *first* trip, if any.
    pub fn trip_dump(&self) -> Option<TraceData> {
        lock(&self.inner.trip_dump).clone()
    }

    /// Record a watchdog trip (and keep the first accompanying flight
    /// dump). Returns the new trip count.
    pub fn record_trip(&self, trip: WatchdogTrip, dump: Option<TraceData>) -> u64 {
        lock(&self.inner.trips).push(trip);
        if let Some(d) = dump {
            lock(&self.inner.trip_dump).get_or_insert(d);
        }
        self.inner.trip_count.fetch_add(1, Relaxed) + 1
    }

    fn sample_rings(&self) -> Vec<RingSample> {
        let probes: Vec<RingProbe> = lock(&self.inner.rings).clone();
        probes
            .iter()
            .map(|p| RingSample {
                name: p.name().to_string(),
                state: p.read(),
            })
            .collect()
    }

    fn snapshot_with_rings(&self, rings: Vec<RingSample>) -> MetricsSnapshot {
        let t_ns = self.elapsed_ns();
        let seq = self.inner.seq.fetch_add(1, Relaxed);
        let stages: Vec<StageSnapshot> = lock(&self.inner.stages)
            .iter()
            .map(|(name, cell)| {
                let hist = lock(&cell.hist).clone();
                StageSnapshot {
                    name: name.clone(),
                    done: cell.done(),
                    planned: cell.planned(),
                    busy_ns: cell.busy_ns(),
                    p50_ns: hist.quantile_ns(0.50),
                    p95_ns: hist.quantile_ns(0.95),
                    p99_ns: hist.quantile_ns(0.99),
                    predicted_secs: cell.predicted_secs().unwrap_or(0.0),
                }
            })
            .collect();
        let counters: Vec<(String, u64)> = lock(&self.inner.counters)
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Relaxed)))
            .collect();
        let gauges: Vec<(String, u64)> = lock(&self.inner.gauges)
            .iter()
            .map(|(n, v)| (n.clone(), v.load(Relaxed)))
            .collect();
        let progress = progress_of(t_ns, &stages);
        MetricsSnapshot {
            version: SNAPSHOT_VERSION,
            seq,
            t_ns,
            stages,
            rings,
            counters,
            gauges,
            watchdog_trips: self.trip_count(),
            progress,
        }
    }

    /// Sample everything into one frame (bumps the sequence number).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_rings(self.sample_rings())
    }

    /// The current frame rendered as a Prometheus-style exposition.
    pub fn prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// Derive progress/ETA from the planned stages of a frame.
fn progress_of(t_ns: u64, stages: &[StageSnapshot]) -> Option<ProgressSnapshot> {
    let planned: Vec<&StageSnapshot> = stages.iter().filter(|s| s.planned > 0).collect();
    if planned.is_empty() {
        return None;
    }
    // Weight stages by model-predicted busy time when every planned
    // stage has one (the honest weighting: a back-projection item is
    // worth far more wall time than a load item); fall back to item
    // counts otherwise.
    let model_weighted = planned.iter().all(|s| s.predicted_secs > 0.0);
    let mut num = 0.0;
    let mut den = 0.0;
    for s in &planned {
        let w = if model_weighted {
            s.predicted_secs
        } else {
            s.planned as f64
        };
        num += w * (s.done.min(s.planned) as f64 / s.planned as f64);
        den += w;
    }
    let frac = if den > 0.0 { num / den } else { 0.0 };
    let eta_ns = if frac > 0.0 && frac < 1.0 {
        (t_ns as f64 * (1.0 - frac) / frac) as u64
    } else {
        0
    };
    let divergence = planned
        .iter()
        .filter(|s| s.predicted_secs > 0.0 && s.done > 0)
        .map(|s| {
            // Extrapolate the measured busy time to stage completion and
            // compare with the model: >1 means slower than predicted.
            let measured = s.busy_ns as f64 / 1e9;
            let extrapolated = measured * s.planned as f64 / s.done as f64;
            (s.name.clone(), extrapolated / s.predicted_secs)
        })
        .collect();
    Some(ProgressSnapshot {
        frac,
        eta_ns,
        divergence,
    })
}

/// One ring's sample inside a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSample {
    /// The probe name.
    pub name: String,
    /// The state read from it.
    pub state: RingLiveState,
}

/// One stage's sample inside a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Stage name.
    pub name: String,
    /// Items completed.
    pub done: u64,
    /// Items expected (0 = unplanned).
    pub planned: u64,
    /// Summed busy nanoseconds.
    pub busy_ns: u64,
    /// Live p50 latency estimate, nanoseconds.
    pub p50_ns: u64,
    /// Live p95 latency estimate, nanoseconds.
    pub p95_ns: u64,
    /// Live p99 latency estimate, nanoseconds.
    pub p99_ns: u64,
    /// Model-predicted aggregate busy seconds (0 = no prediction).
    pub predicted_secs: f64,
}

/// Percent-complete / ETA / live divergence, present once at least one
/// stage has a declared plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Fraction complete in `[0, 1]`.
    pub frac: f64,
    /// Estimated nanoseconds remaining (0 when unknown or done).
    pub eta_ns: u64,
    /// `(stage, extrapolated measured / predicted)` for every stage with
    /// a model prediction and at least one completed item. 1.0 = the
    /// model is exact; >1 = running slower than predicted.
    pub divergence: Vec<(String, f64)>,
}

/// One versioned live-metrics frame.
///
/// Frames serialize to single-line JSON ([`Self::to_json`], streamed as
/// JSONL) and parse back ([`Self::from_json`]); the round-trip is exact
/// for counts below 2^53 (JSON numbers are doubles).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Schema version ([`SNAPSHOT_VERSION`]).
    pub version: u64,
    /// Monotonic frame number within the registry.
    pub seq: u64,
    /// Nanoseconds since the registry origin.
    pub t_ns: u64,
    /// Per-stage samples, name-sorted.
    pub stages: Vec<StageSnapshot>,
    /// Per-ring samples, registration order.
    pub rings: Vec<RingSample>,
    /// Named counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Named high-water gauges, name-sorted.
    pub gauges: Vec<(String, u64)>,
    /// Watchdog trips so far.
    pub watchdog_trips: u64,
    /// Progress/ETA, when any stage has a plan.
    pub progress: Option<ProgressSnapshot>,
}

impl MetricsSnapshot {
    /// Serialize as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let stages = arr(self.stages.iter().map(|s| {
            let mut o = Obj::new();
            o.field_str("name", &s.name)
                .field_u64("done", s.done)
                .field_u64("planned", s.planned)
                .field_u64("busy_ns", s.busy_ns)
                .field_u64("p50_ns", s.p50_ns)
                .field_u64("p95_ns", s.p95_ns)
                .field_u64("p99_ns", s.p99_ns)
                .field_f64("predicted_secs", s.predicted_secs);
            o.finish()
        }));
        let rings = arr(self.rings.iter().map(|r| {
            let mut o = Obj::new();
            o.field_str("name", &r.name)
                .field_u64("capacity", r.state.capacity as u64)
                .field_u64("len", r.state.len as u64)
                .field_u64("high_water", r.state.high_water as u64)
                .field_u64("push_stalls", r.state.push_stalls)
                .field_u64("pop_stalls", r.state.pop_stalls)
                .field_u64("push_stall_ns", r.state.push_stall_ns)
                .field_u64("pop_stall_ns", r.state.pop_stall_ns)
                .field_u64("max_push_stall_ns", r.state.max_push_stall_ns)
                .field_u64("max_pop_stall_ns", r.state.max_pop_stall_ns)
                .field_u64("cur_push_wait_ns", r.state.cur_push_wait_ns)
                .field_u64("cur_pop_wait_ns", r.state.cur_pop_wait_ns);
            o.finish()
        }));
        let named = |pairs: &[(String, u64)]| {
            arr(pairs.iter().map(|(n, v)| {
                let mut o = Obj::new();
                o.field_str("name", n).field_u64("value", *v);
                o.finish()
            }))
        };
        let mut o = Obj::new();
        o.field_u64("v", self.version)
            .field_u64("seq", self.seq)
            .field_u64("t_ns", self.t_ns)
            .field_raw("stages", &stages)
            .field_raw("rings", &rings)
            .field_raw("counters", &named(&self.counters))
            .field_raw("gauges", &named(&self.gauges))
            .field_u64("watchdog_trips", self.watchdog_trips);
        if let Some(p) = &self.progress {
            let div = arr(p.divergence.iter().map(|(n, r)| {
                let mut o = Obj::new();
                o.field_str("stage", n).field_f64("ratio", *r);
                o.finish()
            }));
            let mut po = Obj::new();
            po.field_f64("frac", p.frac)
                .field_u64("eta_ns", p.eta_ns)
                .field_raw("divergence", &div);
            o.field_raw("progress", &po.finish());
        }
        o.finish()
    }

    /// Parse one JSONL line back into a frame. Rejects unknown schema
    /// versions and malformed documents with a description.
    pub fn from_json(line: &str) -> Result<MetricsSnapshot, String> {
        use crate::chrome::json::Value;
        let doc = crate::chrome::json::parse(line)?;
        let u = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .map(|f| f as u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let f = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let s = |v: &Value, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let a = |v: &Value, key: &str| -> Result<Vec<Value>, String> {
            match v.get(key) {
                Some(x) => x
                    .as_array()
                    .map(<[Value]>::to_vec)
                    .ok_or_else(|| format!("field {key:?} is not an array")),
                None => Ok(Vec::new()),
            }
        };
        let version = u(&doc, "v")?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot schema v{version}, this build reads v{SNAPSHOT_VERSION}"
            ));
        }
        let stages = a(&doc, "stages")?
            .iter()
            .map(|v| {
                Ok(StageSnapshot {
                    name: s(v, "name")?,
                    done: u(v, "done")?,
                    planned: u(v, "planned")?,
                    busy_ns: u(v, "busy_ns")?,
                    p50_ns: u(v, "p50_ns")?,
                    p95_ns: u(v, "p95_ns")?,
                    p99_ns: u(v, "p99_ns")?,
                    predicted_secs: f(v, "predicted_secs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let rings = a(&doc, "rings")?
            .iter()
            .map(|v| {
                Ok(RingSample {
                    name: s(v, "name")?,
                    state: RingLiveState {
                        capacity: u(v, "capacity")? as usize,
                        len: u(v, "len")? as usize,
                        high_water: u(v, "high_water")? as usize,
                        push_stalls: u(v, "push_stalls")?,
                        pop_stalls: u(v, "pop_stalls")?,
                        push_stall_ns: u(v, "push_stall_ns")?,
                        pop_stall_ns: u(v, "pop_stall_ns")?,
                        max_push_stall_ns: u(v, "max_push_stall_ns")?,
                        max_pop_stall_ns: u(v, "max_pop_stall_ns")?,
                        cur_push_wait_ns: u(v, "cur_push_wait_ns")?,
                        cur_pop_wait_ns: u(v, "cur_pop_wait_ns")?,
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let named = |key: &str| -> Result<Vec<(String, u64)>, String> {
            a(&doc, key)?
                .iter()
                .map(|v| Ok((s(v, "name")?, u(v, "value")?)))
                .collect()
        };
        let progress = match doc.get("progress") {
            None => None,
            Some(p) => Some(ProgressSnapshot {
                frac: f(p, "frac")?,
                eta_ns: u(p, "eta_ns")?,
                divergence: a(p, "divergence")?
                    .iter()
                    .map(|v| Ok((s(v, "stage")?, f(v, "ratio")?)))
                    .collect::<Result<Vec<_>, String>>()?,
            }),
        };
        Ok(MetricsSnapshot {
            version,
            seq: u(&doc, "seq")?,
            t_ns: u(&doc, "t_ns")?,
            stages,
            rings,
            counters: named("counters")?,
            gauges: named("gauges")?,
            watchdog_trips: u(&doc, "watchdog_trips")?,
            progress,
        })
    }

    /// Render as a Prometheus text exposition: every `ifdk_*` family
    /// carries `# HELP` and `# TYPE` lines, counters end in `_total`,
    /// and time/size series use base-unit suffixes (`_seconds`,
    /// `_bytes`) per the exposition-format conventions, so the output
    /// scrapes cleanly into a real Prometheus without relabelling.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn family(out: &mut String, name: &str, help: &str, kind: &str) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
        family(
            &mut out,
            "ifdk_snapshot_seq",
            "Sequence number of this metrics frame.",
            "gauge",
        );
        let _ = writeln!(out, "ifdk_snapshot_seq {}", self.seq);
        family(
            &mut out,
            "ifdk_uptime_seconds",
            "Seconds since the live registry started sampling.",
            "gauge",
        );
        let _ = writeln!(out, "ifdk_uptime_seconds {}", self.t_ns as f64 / 1e9);
        family(
            &mut out,
            "ifdk_watchdog_trips_total",
            "Stall-watchdog trips recorded so far.",
            "counter",
        );
        let _ = writeln!(out, "ifdk_watchdog_trips_total {}", self.watchdog_trips);
        if !self.stages.is_empty() {
            family(
                &mut out,
                "ifdk_stage_done_total",
                "Work items completed per pipeline stage.",
                "counter",
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "ifdk_stage_done_total{{stage=\"{}\"}} {}",
                    s.name, s.done
                );
            }
            family(
                &mut out,
                "ifdk_stage_busy_seconds_total",
                "Cumulative busy seconds per pipeline stage.",
                "counter",
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "ifdk_stage_busy_seconds_total{{stage=\"{}\"}} {}",
                    s.name,
                    s.busy_ns as f64 / 1e9
                );
            }
            for (suffix, help, pick) in [
                (
                    "p50",
                    "Median per-item latency per stage, seconds.",
                    (|s: &StageSnapshot| s.p50_ns) as fn(&StageSnapshot) -> u64,
                ),
                (
                    "p95",
                    "95th-percentile per-item latency per stage, seconds.",
                    |s: &StageSnapshot| s.p95_ns,
                ),
                (
                    "p99",
                    "99th-percentile per-item latency per stage, seconds.",
                    |s: &StageSnapshot| s.p99_ns,
                ),
            ] {
                family(
                    &mut out,
                    &format!("ifdk_stage_{suffix}_seconds"),
                    help,
                    "gauge",
                );
                for s in &self.stages {
                    let _ = writeln!(
                        out,
                        "ifdk_stage_{suffix}_seconds{{stage=\"{}\"}} {}",
                        s.name,
                        pick(s) as f64 / 1e9
                    );
                }
            }
        }
        if !self.rings.is_empty() {
            family(
                &mut out,
                "ifdk_ring_len",
                "Current occupancy of each circular buffer.",
                "gauge",
            );
            for r in &self.rings {
                let _ = writeln!(out, "ifdk_ring_len{{ring=\"{}\"}} {}", r.name, r.state.len);
            }
            family(
                &mut out,
                "ifdk_ring_worst_wait_seconds",
                "Worst observed blocked wait per ring (completed or in flight), seconds.",
                "gauge",
            );
            for r in &self.rings {
                let _ = writeln!(
                    out,
                    "ifdk_ring_worst_wait_seconds{{ring=\"{}\"}} {}",
                    r.name,
                    r.state.worst_wait_ns() as f64 / 1e9
                );
            }
            family(
                &mut out,
                "ifdk_ring_push_stall_seconds_total",
                "Cumulative seconds producers spent blocked on a full ring.",
                "counter",
            );
            for r in &self.rings {
                let _ = writeln!(
                    out,
                    "ifdk_ring_push_stall_seconds_total{{ring=\"{}\"}} {}",
                    r.name,
                    r.state.push_stall_ns as f64 / 1e9
                );
            }
            family(
                &mut out,
                "ifdk_ring_pop_stall_seconds_total",
                "Cumulative seconds consumers spent blocked on an empty ring.",
                "counter",
            );
            for r in &self.rings {
                let _ = writeln!(
                    out,
                    "ifdk_ring_pop_stall_seconds_total{{ring=\"{}\"}} {}",
                    r.name,
                    r.state.pop_stall_ns as f64 / 1e9
                );
            }
        }
        if !self.counters.is_empty() {
            family(
                &mut out,
                "ifdk_counter_total",
                "Named application counters mirrored from the recorder.",
                "counter",
            );
            for (name, v) in &self.counters {
                let _ = writeln!(out, "ifdk_counter_total{{name=\"{name}\"}} {v}");
            }
        }
        if !self.gauges.is_empty() {
            family(
                &mut out,
                "ifdk_gauge",
                "Named application gauges mirrored from the recorder.",
                "gauge",
            );
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "ifdk_gauge{{name=\"{name}\"}} {v}");
            }
        }
        if let Some(p) = &self.progress {
            family(
                &mut out,
                "ifdk_progress_ratio",
                "Fraction of planned pipeline work completed, 0 to 1.",
                "gauge",
            );
            let _ = writeln!(out, "ifdk_progress_ratio {}", p.frac);
            family(
                &mut out,
                "ifdk_eta_seconds",
                "Estimated seconds until pipeline completion.",
                "gauge",
            );
            let _ = writeln!(out, "ifdk_eta_seconds {}", p.eta_ns as f64 / 1e9);
        }
        out
    }
}

#[derive(Debug)]
struct FlightRing {
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

/// One `(rank, role)` lane of the flight recorder: a bounded drop-oldest
/// ring of completed spans. Cheap to clone (handles share the ring);
/// fetched once per track and written on every completed span.
#[derive(Debug, Clone)]
pub struct FlightLane {
    capacity: usize,
    ring: Arc<Mutex<FlightRing>>,
}

impl FlightLane {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ring: Arc::new(Mutex::new(FlightRing {
                events: VecDeque::with_capacity(capacity),
                dropped: 0,
            })),
        }
    }

    /// Record one completed span, evicting the oldest at capacity.
    pub fn record(&self, event: SpanEvent) {
        let mut ring = lock(&self.ring);
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        // analyze: allow(alloc, reason = "bounded flight ring: capacity reserved in new() and the eviction above keeps len < capacity, so push_back never reallocates")
        ring.events.push_back(event);
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        lock(&self.ring).events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted so far.
    pub fn dropped(&self) -> u64 {
        lock(&self.ring).dropped
    }
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    lanes: Mutex<BTreeMap<(u32, ThreadRole), FlightLane>>,
}

/// The flight recorder: always-on bounded span retention, one
/// [`FlightLane`] per `(rank, role)`. Memory is O(lanes x capacity)
/// regardless of run length; [`Self::dump`] turns the retained window
/// into an ordinary [`TraceData`] at any moment — including while the
/// pipeline is still running.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` spans per lane
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(FlightInner {
                capacity: capacity.max(1),
                lanes: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Per-lane capacity, spans.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Get-or-create the lane for `(rank, role)`.
    pub fn lane(&self, rank: u32, role: ThreadRole) -> FlightLane {
        lock(&self.inner.lanes)
            .entry((rank, role))
            .or_insert_with(|| FlightLane::new(self.inner.capacity))
            .clone()
    }

    /// Total spans evicted across all lanes.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner.lanes)
            .values()
            .map(FlightLane::dropped)
            .sum()
    }

    /// Dump the retained window as a capture: sorted events plus
    /// rebuilt per-stage aggregates, ready for [`crate::analysis`] and
    /// [`crate::chrome`].
    pub fn dump(&self) -> TraceData {
        let lanes: Vec<FlightLane> = lock(&self.inner.lanes).values().cloned().collect();
        let mut events = Vec::new();
        for lane in lanes {
            events.extend(lock(&lane.ring).events.iter().cloned());
        }
        TraceData::from_events(events)
    }
}

/// Sampler configuration for a [`LiveSession`].
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Sampling period.
    pub period: Duration,
    /// Stall-watchdog deadline: a ring side blocked longer than this
    /// trips the watchdog. `None` disables the watchdog.
    pub stall_deadline: Option<Duration>,
}

impl Default for LiveOptions {
    fn default() -> Self {
        Self {
            period: Duration::from_millis(100),
            stall_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// What a live session observed, returned by [`LiveSession::stop`].
#[derive(Debug)]
pub struct LiveOutcome {
    /// Frames emitted (the final frame is always taken at stop).
    pub snapshots: u64,
    /// The final frame.
    pub last: Option<MetricsSnapshot>,
    /// All watchdog trips, in order.
    pub trips: Vec<WatchdogTrip>,
    /// Flight dump captured at the *first* trip (the run's state when
    /// things went wrong), if the watchdog tripped.
    pub trip_dump: Option<TraceData>,
    /// Flight dump taken at stop (the run's last `capacity` spans per
    /// lane), if a flight recorder was attached.
    pub flight_dump: Option<TraceData>,
    /// First JSONL sink write error, if the stream failed mid-run.
    pub write_error: Option<String>,
}

type SamplerResult = (u64, Option<MetricsSnapshot>, Option<String>);

/// The sampler thread: one [`MetricsSnapshot`] per period to an optional
/// JSONL sink, with the stall watchdog in the same loop. Start it just
/// before launching the pipeline, [`Self::stop`] it right after.
#[derive(Debug)]
pub struct LiveSession {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: std::thread::JoinHandle<SamplerResult>,
    registry: LiveRegistry,
    flight: Option<FlightRecorder>,
}

impl LiveSession {
    /// Spawn the sampler.
    ///
    /// `recorder` is where `watchdog.trip` events land (rank 0, role
    /// `Other`); pass the same recorder the pipeline records into so
    /// trips show up in the final capture. `sink` receives one JSON line
    /// per frame; write failures are remembered (first one) but do not
    /// kill the sampler.
    pub fn start(
        registry: LiveRegistry,
        flight: Option<FlightRecorder>,
        recorder: &Recorder,
        opts: LiveOptions,
        sink: Option<Box<dyn std::io::Write + Send>>,
    ) -> LiveSession {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let reg = registry.clone();
        let fl = flight.clone();
        let recorder = recorder.clone();
        let handle = std::thread::Builder::new()
            .name("ct-obs-live".into())
            .spawn(move || sampler_main(reg, fl, recorder, opts, sink, stop2))
            .expect("spawning the live sampler thread");
        LiveSession {
            stop,
            handle,
            registry,
            flight,
        }
    }

    /// The registry this session samples.
    pub fn registry(&self) -> &LiveRegistry {
        &self.registry
    }

    /// Signal the sampler, join it, and assemble the outcome (a final
    /// frame is always emitted on the way out).
    pub fn stop(self) -> LiveOutcome {
        {
            let (lk, cv) = &*self.stop;
            *lock(lk) = true;
            cv.notify_all();
        }
        let (snapshots, last, write_error) = match self.handle.join() {
            Ok(r) => r,
            Err(_) => (0, None, Some("live sampler thread panicked".to_string())),
        };
        LiveOutcome {
            snapshots,
            last,
            trips: self.registry.trips(),
            trip_dump: self.registry.trip_dump(),
            flight_dump: self.flight.as_ref().map(FlightRecorder::dump),
            write_error,
        }
    }
}

fn sampler_main(
    registry: LiveRegistry,
    flight: Option<FlightRecorder>,
    recorder: Recorder,
    opts: LiveOptions,
    mut sink: Option<Box<dyn std::io::Write + Send>>,
    stop: Arc<(Mutex<bool>, Condvar)>,
) -> SamplerResult {
    // The watchdog's own track: `watchdog.trip` events land on
    // (rank 0, Other) and merge into the recorder when the sampler ends.
    let track = recorder.track(0, ThreadRole::Other);
    let deadline_ns = opts.stall_deadline.map(|d| (d.as_nanos() as u64).max(1));
    let mut snapshots = 0u64;
    // Assigned on every loop iteration before any `break`.
    let mut last: Option<MetricsSnapshot>;
    let mut write_error: Option<String> = None;
    // Ring sides currently past the deadline: a side trips once per
    // excursion and re-arms when its wait drops back under.
    let mut over: BTreeSet<(String, StallKind)> = BTreeSet::new();
    loop {
        let stopping = {
            let (lk, cv) = &*stop;
            let mut g = lock(lk);
            if !*g {
                g = cv
                    .wait_timeout(g, opts.period)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
            *g
        };

        let rings = registry.sample_rings();
        if let Some(deadline_ns) = deadline_ns {
            watchdog_check(
                &registry,
                flight.as_ref(),
                &track,
                &rings,
                deadline_ns,
                &mut over,
            );
        }
        let snap = registry.snapshot_with_rings(rings);
        if let Some(w) = sink.as_mut() {
            let res = writeln!(w, "{}", snap.to_json()).and_then(|()| w.flush());
            if let (Err(e), None) = (res, write_error.as_ref()) {
                write_error = Some(format!("live metrics sink: {e}"));
            }
        }
        snapshots += 1;
        last = Some(snap);
        if stopping {
            break;
        }
    }
    (snapshots, last, write_error)
}

/// One watchdog pass over freshly sampled ring states.
fn watchdog_check(
    registry: &LiveRegistry,
    flight: Option<&FlightRecorder>,
    track: &crate::recorder::Track,
    rings: &[RingSample],
    deadline_ns: u64,
    over: &mut BTreeSet<(String, StallKind)>,
) {
    for r in rings {
        for kind in [StallKind::Push, StallKind::Pop] {
            let wait_ns = r.state.cur_wait_ns(kind);
            let key = (r.name.clone(), kind);
            if wait_ns < deadline_ns {
                over.remove(&key);
                continue;
            }
            if !over.insert(key) {
                continue; // already tripped for this excursion
            }
            let trip = WatchdogTrip {
                seq: registry.inner.seq.load(Relaxed),
                t_ns: registry.elapsed_ns(),
                ring: r.name.clone(),
                kind,
                wait_ns,
            };
            let dump = flight.map(FlightRecorder::dump);
            let n = registry.record_trip(trip, dump);
            let now = crate::clock::now();
            track.record_completed("watchdog.trip", Some(n - 1), None, now, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Track;

    #[test]
    fn stage_cells_accumulate_and_plan() {
        let reg = LiveRegistry::new();
        let cell = reg.stage("filter");
        cell.record(1_000);
        cell.record_batch(3, 6_000);
        assert_eq!(cell.done(), 4);
        assert_eq!(cell.busy_ns(), 7_000);
        assert_eq!(cell.planned(), 0);
        reg.plan_stage("filter", 8, Some(2.5));
        assert_eq!(cell.planned(), 8);
        assert_eq!(cell.predicted_secs(), Some(2.5));
        // Same name returns the same cell.
        assert_eq!(reg.stage("filter").done(), 4);
    }

    #[test]
    fn snapshot_counts_and_progress() {
        let reg = LiveRegistry::new();
        reg.plan_stage("a", 10, None);
        reg.plan_stage("b", 10, None);
        let a = reg.stage("a");
        for _ in 0..10 {
            a.record(100);
        }
        reg.stage("b").record(100);
        reg.counter("msgs").fetch_add(7, Relaxed);
        reg.gauge("hw").fetch_max(3, Relaxed);
        let snap = reg.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.seq, 0);
        assert_eq!(snap.counters, vec![("msgs".to_string(), 7)]);
        assert_eq!(snap.gauges, vec![("hw".to_string(), 3)]);
        let p = snap.progress.expect("planned stages yield progress");
        // 10/10 + 1/10 over equal weights = 0.55.
        assert!((p.frac - 0.55).abs() < 1e-12, "frac {}", p.frac);
        assert!(p.eta_ns > 0);
        assert!(p.divergence.is_empty(), "no model predictions declared");
        // Sequence numbers advance.
        assert_eq!(reg.snapshot().seq, 1);
    }

    #[test]
    fn model_weighted_progress_and_divergence() {
        let reg = LiveRegistry::new();
        reg.plan_stage("cheap", 10, Some(1.0));
        reg.plan_stage("heavy", 10, Some(9.0));
        let c = reg.stage("cheap");
        for _ in 0..10 {
            c.record(200_000_000); // 0.2 s each -> 2 s total vs 1 s predicted
        }
        let snap = reg.snapshot();
        let p = snap.progress.expect("progress");
        // cheap done (weight 1), heavy untouched (weight 9) -> 10%.
        assert!((p.frac - 0.1).abs() < 1e-12, "frac {}", p.frac);
        let (name, ratio) = &p.divergence[0];
        assert_eq!(name, "cheap");
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn snapshot_json_round_trip() {
        let reg = LiveRegistry::new();
        reg.plan_stage("backprojection", 6, Some(0.75));
        reg.stage("backprojection").record_batch(2, 5_000);
        reg.counter("comm.msgs").fetch_add(11, Relaxed);
        reg.watch_ring(RingProbe::new("rank0.ring.bp", || RingLiveState {
            capacity: 64,
            len: 3,
            high_water: 9,
            push_stalls: 2,
            pop_stalls: 1,
            push_stall_ns: 1_500,
            pop_stall_ns: 700,
            max_push_stall_ns: 1_000,
            max_pop_stall_ns: 700,
            cur_push_wait_ns: 42,
            cur_pop_wait_ns: 0,
        }));
        let snap = reg.snapshot();
        let line = snap.to_json();
        assert!(!line.contains('\n'), "one frame = one line");
        let back = MetricsSnapshot::from_json(&line).expect("round trip parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_other_versions_and_garbage() {
        assert!(MetricsSnapshot::from_json("not json").is_err());
        let err = MetricsSnapshot::from_json(r#"{"v":999,"seq":0,"t_ns":0}"#)
            .expect_err("future schema rejected");
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = LiveRegistry::new();
        reg.plan_stage("filter", 4, None);
        reg.stage("filter").record(1_000);
        reg.watch_ring(RingProbe::new("ring.x", RingLiveState::default));
        let text = reg.prometheus();
        assert!(text.contains("ifdk_stage_done_total{stage=\"filter\"} 1"));
        assert!(text.contains("ifdk_ring_len{ring=\"ring.x\"} 0"));
        assert!(text.contains("ifdk_progress_ratio 0.25"));
        assert!(text.contains("# TYPE ifdk_watchdog_trips_total counter"));
        assert!(text.contains("ifdk_stage_p50_seconds{stage=\"filter\"}"));
        assert!(text.contains("ifdk_stage_p99_seconds{stage=\"filter\"}"));
        assert!(text.contains("ifdk_ring_push_stall_seconds_total{ring=\"ring.x\"} 0"));
        assert!(text.contains("ifdk_ring_pop_stall_seconds_total{ring=\"ring.x\"} 0"));
        // Exposition-format hygiene: every exported family has HELP and
        // TYPE, every TYPE'd family is exported, and counters end in
        // `_total`.
        let mut typed = std::collections::BTreeSet::new();
        let mut helped = std::collections::BTreeSet::new();
        let mut exported = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap_or_default().to_string();
                if it.next() == Some("counter") {
                    assert!(name.ends_with("_total"), "counter without _total: {name}");
                }
                typed.insert(name);
            } else if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(
                    rest.split_whitespace()
                        .next()
                        .unwrap_or_default()
                        .to_string(),
                );
            } else if !line.is_empty() {
                let name = line.split(['{', ' ']).next().unwrap_or_default();
                exported.insert(name.to_string());
            }
        }
        assert_eq!(typed, exported, "every exported family is TYPE'd");
        assert_eq!(typed, helped, "every TYPE'd family has HELP");
    }

    fn ev(name: &'static str, start: u64) -> SpanEvent {
        SpanEvent {
            rank: 0,
            role: ThreadRole::Filter,
            name,
            start_ns: start,
            dur_ns: 10,
            index: None,
            bytes: None,
            deps: None,
        }
    }

    #[test]
    fn flight_lane_drops_oldest_at_capacity() {
        let fr = FlightRecorder::new(3);
        let lane = fr.lane(0, ThreadRole::Filter);
        assert!(lane.is_empty());
        for i in 0..5 {
            lane.record(ev("filter", i * 100));
        }
        assert_eq!(lane.len(), 3);
        assert_eq!(lane.dropped(), 2);
        assert_eq!(fr.dropped(), 2);
        let dump = fr.dump();
        assert_eq!(dump.events.len(), 3);
        // The oldest two are gone; the window starts at 200.
        assert_eq!(dump.events[0].start_ns, 200);
        let s = dump.stage(0, ThreadRole::Filter, "filter").expect("stage");
        assert_eq!(s.count, 3);
    }

    #[test]
    fn flight_lanes_are_per_rank_role_and_shared() {
        let fr = FlightRecorder::new(8);
        let a = fr.lane(0, ThreadRole::Filter);
        let b = fr.lane(0, ThreadRole::Filter);
        a.record(ev("filter", 0));
        assert_eq!(b.len(), 1, "same (rank, role) shares one ring");
        fr.lane(1, ThreadRole::Main).record(SpanEvent {
            rank: 1,
            role: ThreadRole::Main,
            ..ev("allgather", 50)
        });
        let dump = fr.dump();
        assert_eq!(dump.ranks(), vec![0, 1]);
    }

    #[test]
    fn session_emits_frames_and_watchdog_trips_on_stall() {
        let rec = Recorder::summary();
        let reg = LiveRegistry::new();
        let flight = FlightRecorder::new(16);
        flight
            .lane(0, ThreadRole::Backprojection)
            .record(SpanEvent {
                role: ThreadRole::Backprojection,
                name: "backprojection",
                ..ev("backprojection", 0)
            });
        // A ring probe that always reports a 50 ms in-flight push wait.
        reg.watch_ring(RingProbe::new("ring.bp", || RingLiveState {
            cur_push_wait_ns: 50_000_000,
            ..RingLiveState::default()
        }));
        let session = LiveSession::start(
            reg.clone(),
            Some(flight),
            &rec,
            LiveOptions {
                period: Duration::from_millis(2),
                stall_deadline: Some(Duration::from_millis(10)),
            },
            None,
        );
        std::thread::sleep(Duration::from_millis(30));
        let outcome = session.stop();
        assert!(outcome.snapshots >= 2, "{} frames", outcome.snapshots);
        assert!(outcome.write_error.is_none());
        // The stall was continuously over deadline: exactly one trip
        // (per-excursion dedup), attributed to the right ring and side.
        assert_eq!(outcome.trips.len(), 1, "{:?}", outcome.trips);
        assert_eq!(outcome.trips[0].ring, "ring.bp");
        assert_eq!(outcome.trips[0].kind, StallKind::Push);
        assert!(outcome.trips[0].wait_ns >= 10_000_000);
        let last = outcome.last.expect("final frame");
        assert_eq!(last.watchdog_trips, 1);
        // The trip dump is the flight window at trip time.
        let td = outcome.trip_dump.expect("trip dump captured");
        assert_eq!(td.events.len(), 1);
        assert!(outcome.flight_dump.is_some());
        // The watchdog.trip event merged into the recorder.
        let trace = rec.collect();
        let s = trace
            .stage(0, ThreadRole::Other, "watchdog.trip")
            .expect("watchdog.trip recorded");
        assert_eq!(s.count, 1);
    }

    /// A `'static` in-memory JSONL sink shared with the test thread.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn session_without_watchdog_or_rings_stays_clean() {
        let rec = Recorder::off();
        let reg = LiveRegistry::new();
        reg.stage("filter").record(5);
        let buf = SharedBuf::default();
        let session = LiveSession::start(
            reg.clone(),
            None,
            &rec,
            LiveOptions {
                period: Duration::from_millis(5),
                stall_deadline: None,
            },
            Some(Box::new(buf.clone())),
        );
        std::thread::sleep(Duration::from_millis(12));
        let outcome = session.stop();
        assert!(outcome.trips.is_empty());
        assert!(outcome.trip_dump.is_none());
        assert!(outcome.flight_dump.is_none());
        let text = String::from_utf8(lock(&buf.0).clone()).expect("utf8 jsonl");
        let mut prev_seq = None;
        let mut frames = 0u64;
        for line in text.lines() {
            let snap = MetricsSnapshot::from_json(line).expect("every line parses");
            if let Some(p) = prev_seq {
                assert!(snap.seq > p, "sequence numbers increase");
            }
            prev_seq = Some(snap.seq);
            frames += 1;
        }
        assert_eq!(frames, outcome.snapshots);
    }

    #[test]
    #[ignore = "bench-style overhead budgets; run with `cargo test -- --ignored`"]
    fn recording_overhead_budgets() {
        // Budgets are deliberately generous (10-100x typical measured
        // cost) so the test asserts "did not regress catastrophically"
        // rather than machine-specific microbenchmark numbers.
        let n = 1_000_000u64;

        // Disabled-track span path: a single Option check. Budget:
        // 200 ns/op.
        let track = Track::disabled();
        let t0 = Instant::now();
        for i in 0..n {
            let _sp = track.span("filter").with_index(i);
        }
        let per_op = t0.elapsed().as_nanos() as f64 / n as f64;
        assert!(
            per_op < 200.0,
            "disabled span path: {per_op:.1} ns/op exceeds the 200 ns budget"
        );

        // Flight-recorder record path: one short mutex hold + VecDeque
        // rotate. Budget: 2000 ns/op.
        let fr = FlightRecorder::new(512);
        let lane = fr.lane(0, ThreadRole::Backprojection);
        let t0 = Instant::now();
        for i in 0..n {
            lane.record(SpanEvent {
                rank: 0,
                role: ThreadRole::Backprojection,
                name: "backprojection",
                start_ns: i,
                dur_ns: 10,
                index: Some(i),
                bytes: None,
                deps: None,
            });
        }
        let per_op = t0.elapsed().as_nanos() as f64 / n as f64;
        assert!(
            per_op < 2000.0,
            "flight record path: {per_op:.1} ns/op exceeds the 2000 ns budget"
        );

        // Live stage-cell record path: two atomics + a short mutex hold.
        // Budget: 2000 ns/op.
        let reg = LiveRegistry::new();
        let cell = reg.stage("backprojection");
        let t0 = Instant::now();
        for _ in 0..n {
            cell.record(10);
        }
        let per_op = t0.elapsed().as_nanos() as f64 / n as f64;
        assert!(
            per_op < 2000.0,
            "stage cell record path: {per_op:.1} ns/op exceeds the 2000 ns budget"
        );
    }
}
