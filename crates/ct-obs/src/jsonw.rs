//! Minimal JSON *writer* shared by the machine-readable exports.
//!
//! `ct-obs` is deliberately dependency-free, so the workspace hand-rolls
//! both directions of its JSON: parsing lives in [`crate::chrome::json`],
//! and this module is the one serializer. It is used by the live-metrics
//! frames ([`crate::live::MetricsSnapshot::to_json`]), the analysis
//! export ([`crate::analysis::PipelineAnalysis::to_json`]) and, through
//! those, `tracereport --format json` and the `monitor` bench bin.
//!
//! The builders emit compact one-line JSON with deterministic field
//! order (fields appear in call order), which is exactly what a JSONL
//! stream needs. Non-finite floats have no JSON spelling; they are
//! clamped to `0` so a pathological sample can never corrupt the stream.
//!
//! ```
//! use ct_obs::jsonw::Obj;
//!
//! let mut o = Obj::new();
//! o.field_u64("seq", 7).field_str("stage", "filter");
//! assert_eq!(o.finish(), r#"{"seq":7,"stage":"filter"}"#);
//! ```

use std::fmt::Write as _;

/// Render a `f64` as a JSON number. `NaN`/`inf` clamp to `0` (JSON has
/// no spelling for them); everything else uses Rust's shortest
/// round-trip `Display`, which is valid JSON.
pub fn num_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render a string as a JSON string literal, quotes included. The
/// escaping matches the Chrome exporter: pure-ASCII output, `\uXXXX`
/// for control characters and non-ASCII scalars.
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || !c.is_ascii() => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Join pre-serialized JSON values into an array literal.
pub fn arr<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A JSON object under construction. Fields are emitted in call order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push_str(&str_lit(key));
        self.buf.push(':');
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field ([`num_f64`] semantics).
    pub fn field_f64(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&num_f64(v));
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(&str_lit(v));
        self
    }

    /// Add a boolean field.
    pub fn field_bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-serialized JSON (an object or
    /// array built elsewhere). The caller vouches for its validity.
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(self) -> String {
        let mut buf = String::with_capacity(self.buf.len() + 2);
        buf.push('{');
        buf.push_str(&self.buf);
        buf.push('}');
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_in_call_order() {
        let mut o = Obj::new();
        o.field_u64("a", 1)
            .field_f64("b", 0.5)
            .field_str("c", "x\"y")
            .field_bool("d", true)
            .field_raw("e", "[1,2]");
        assert_eq!(
            o.finish(),
            r#"{"a":1,"b":0.5,"c":"x\"y","d":true,"e":[1,2]}"#
        );
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(arr(Vec::<String>::new()), "[]");
        assert_eq!(arr(vec!["1".to_string(), "2".to_string()]), "[1,2]");
    }

    #[test]
    fn non_finite_floats_clamp_to_zero() {
        assert_eq!(num_f64(f64::NAN), "0");
        assert_eq!(num_f64(f64::INFINITY), "0");
        assert_eq!(num_f64(1.25), "1.25");
    }

    #[test]
    fn escaping_matches_parser() {
        let s = "weird \"name\"\nwith\ttabs and unicode: µs";
        let lit = str_lit(s);
        let parsed = crate::chrome::json::parse(&lit).expect("writer output parses");
        assert_eq!(parsed.as_str(), Some(s));
    }
}
