//! Chrome trace-event JSON export.
//!
//! [`to_chrome_json`] renders a [`TraceData`] capture as the trace-event
//! format understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: one *process* per distributed rank, one named
//! *thread* per pipeline role, complete (`"ph":"X"`) events for spans and
//! counter (`"ph":"C"`) samples for the final counter/gauge values. The
//! format reference is the "Trace Event Format" document; only the subset
//! below is emitted:
//!
//! * `M` metadata events naming each rank's process and each role's
//!   thread lane;
//! * `X` complete events with microsecond `ts`/`dur` (fractional, so
//!   sub-microsecond stages survive the export);
//! * `C` counter events carrying the end-of-run counters and high-water
//!   gauges.
//!
//! The writer is hand-rolled: the vocabulary is tiny, the crate stays
//! dependency-free, and the output is deterministic (events are emitted
//! in the capture's sorted order).

use crate::recorder::ThreadRole;
use crate::trace::TraceData;
use std::fmt::Write as _;

/// All roles, in lane order.
const ROLES: [ThreadRole; 5] = [
    ThreadRole::Filter,
    ThreadRole::Main,
    ThreadRole::Backprojection,
    ThreadRole::Io,
    ThreadRole::Other,
];

/// Escape a string for a JSON string literal (quotes not included). The
/// output is pure ASCII: control characters and every non-ASCII scalar
/// are written as `\uXXXX` escapes (UTF-16 surrogate pairs for the
/// astral planes), so the document survives viewers that mishandle raw
/// UTF-8.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || !c.is_ascii() => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    let _ = write!(out, "\\u{unit:04x}");
                }
            }
            c => out.push(c),
        }
    }
}

/// Format nanoseconds as fractional microseconds (the unit `ts`/`dur`
/// use). Three decimals keep full nanosecond resolution.
fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Render a capture as Chrome trace-event JSON.
///
/// The result is a single JSON object `{"traceEvents": [...],
/// "displayTimeUnit": "ms"}` — load it directly in Perfetto or
/// `chrome://tracing`.
pub fn to_chrome_json(data: &TraceData) -> String {
    let mut events: Vec<String> = Vec::new();

    // Metadata: name one process per rank, one thread lane per role that
    // actually recorded something on that rank.
    let ranks = data.ranks();
    let seen_role = |rank: u32, role: ThreadRole| -> bool {
        data.events.iter().any(|e| e.rank == rank && e.role == role)
            || data.stages.iter().any(|s| s.rank == rank && s.role == role)
            || data
                .counters
                .iter()
                .chain(data.gauges.iter())
                .any(|m| m.rank == rank && m.role == role)
    };
    for &rank in &ranks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_sort_index\",\
             \"args\":{{\"sort_index\":{rank}}}}}"
        ));
        for role in ROLES {
            if !seen_role(rank, role) {
                continue;
            }
            let tid = role.tid();
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                role.as_str()
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
    }

    // Spans as complete events.
    for e in &data.events {
        let mut ev = String::with_capacity(128);
        ev.push_str("{\"ph\":\"X\",\"pid\":");
        let _ = write!(ev, "{}", e.rank);
        let _ = write!(ev, ",\"tid\":{}", e.role.tid());
        let _ = write!(ev, ",\"ts\":{}", micros(e.start_ns));
        let _ = write!(ev, ",\"dur\":{}", micros(e.dur_ns));
        ev.push_str(",\"cat\":\"stage\",\"name\":\"");
        escape_into(&mut ev, e.name);
        ev.push('"');
        if e.index.is_some() || e.bytes.is_some() || e.deps.is_some() {
            ev.push_str(",\"args\":{");
            let mut first = true;
            if let Some(i) = e.index {
                let _ = write!(ev, "\"index\":{i}");
                first = false;
            }
            if let Some(b) = e.bytes {
                if !first {
                    ev.push(',');
                }
                let _ = write!(ev, "\"bytes\":{b}");
                first = false;
            }
            if let Some(d) = e.deps {
                if !first {
                    ev.push(',');
                }
                ev.push_str("\"dep_stage\":\"");
                escape_into(&mut ev, d.stage);
                let _ = write!(ev, "\",\"dep_lo\":{},\"dep_hi\":{}", d.lo, d.hi);
            }
            ev.push('}');
        }
        ev.push('}');
        events.push(ev);
    }

    // Producer -> consumer dependency arrows as flow-event pairs: a
    // `ph:"s"` start anchored at the end of each producer span and a
    // `ph:"f"` (binding point `"e"`: enclosing slice) at the start of the
    // consumer. Perfetto binds the pair by `(cat, name, id)`.
    let mut flow_id: u64 = 0;
    for e in &data.events {
        let Some(d) = e.deps else { continue };
        for p in data.events.iter().filter(|p| {
            p.rank == e.rank && p.name == d.stage && p.index.is_some_and(|i| d.contains(i))
        }) {
            flow_id += 1;
            let mut s = String::with_capacity(96);
            s.push_str("{\"ph\":\"s\",\"pid\":");
            let _ = write!(s, "{}", p.rank);
            let _ = write!(s, ",\"tid\":{}", p.role.tid());
            let _ = write!(s, ",\"ts\":{}", micros(p.end_ns().saturating_sub(1)));
            s.push_str(",\"cat\":\"dep\",\"name\":\"");
            escape_into(&mut s, d.stage);
            let _ = write!(s, "\",\"id\":{flow_id}}}");
            events.push(s);
            let mut f = String::with_capacity(96);
            f.push_str("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":");
            let _ = write!(f, "{}", e.rank);
            let _ = write!(f, ",\"tid\":{}", e.role.tid());
            let _ = write!(f, ",\"ts\":{}", micros(e.start_ns));
            f.push_str(",\"cat\":\"dep\",\"name\":\"");
            escape_into(&mut f, d.stage);
            let _ = write!(f, "\",\"id\":{flow_id}}}");
            events.push(f);
        }
    }

    // Counters and gauges as counter samples at the end of the capture,
    // so the tracks render next to the span timeline.
    let end_ns = data
        .events
        .iter()
        .map(|e| e.end_ns())
        .max()
        .unwrap_or_default();
    for (kind, metrics) in [("counter", &data.counters), ("gauge", &data.gauges)] {
        for m in metrics.iter() {
            let mut ev = String::with_capacity(96);
            ev.push_str("{\"ph\":\"C\",\"pid\":");
            let _ = write!(ev, "{}", m.rank);
            let _ = write!(ev, ",\"tid\":{}", m.role.tid());
            let _ = write!(ev, ",\"ts\":{}", micros(end_ns));
            let _ = write!(ev, ",\"cat\":\"{kind}\",\"name\":\"");
            escape_into(&mut ev, m.name);
            let _ = write!(ev, "\",\"args\":{{\"value\":{}}}", m.value);
            ev.push('}');
            events.push(ev);
        }
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// What [`validate`] extracts from a trace-event JSON document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCheck {
    /// Number of `"ph":"X"` complete (span) events.
    pub span_events: usize,
    /// Number of `"ph":"s"` / `"ph":"f"` flow events (starts + finishes).
    pub flow_events: usize,
    /// Distinct `pid`s (ranks) observed on span events.
    pub ranks: Vec<u64>,
    /// Thread names announced by `thread_name` metadata events.
    pub thread_names: Vec<String>,
    /// Distinct span names observed.
    pub span_names: Vec<String>,
}

impl TraceCheck {
    /// True when a thread lane with this name was announced.
    pub fn has_thread(&self, name: &str) -> bool {
        self.thread_names.iter().any(|n| n == name)
    }

    /// True when at least one span with this name was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.iter().any(|n| n == name)
    }
}

/// Parse a trace-event JSON document and check the invariants the
/// exporter promises: a `traceEvents` array whose `X` entries all carry
/// `ph`, `ts`, `dur`, `pid`, `tid` and `name`. Returns a summary of what
/// the trace contains, or a description of the first violation.
///
/// This uses the crate's own minimal JSON parser, so CI smoke tests and
/// the `tracecheck` tool can validate captures without further
/// dependencies.
pub fn validate(json: &str) -> Result<TraceCheck, String> {
    let doc = json::parse(json)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut check = TraceCheck::default();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |name: &str| -> Result<&json::Value, String> {
            ev.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing field {name}"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph is not a string"))?;
        // Every event kind carries pid, tid and name.
        let pid = field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: pid is not a number"))?;
        field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: tid is not a number"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name is not a string"))?;
        match ph {
            "X" => {
                field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: ts is not a number"))?;
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: dur is not a number"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                check.span_events += 1;
                if !check.ranks.contains(&(pid as u64)) {
                    check.ranks.push(pid as u64);
                }
                if !check.span_names.iter().any(|n| n == name) {
                    check.span_names.push(name.to_string());
                }
            }
            "M" if name == "thread_name" => {
                let args = field("args")?
                    .as_object()
                    .ok_or_else(|| format!("event {i}: args is not an object"))?;
                let tname = args
                    .iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("event {i}: thread_name missing args.name"))?;
                if !check.thread_names.iter().any(|n| n == tname) {
                    check.thread_names.push(tname.to_string());
                }
            }
            "s" | "f" => {
                // Flow events bind by id; an unbindable arrow is a bug.
                field("id")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: flow id is not a number"))?;
                field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: ts is not a number"))?;
                check.flow_events += 1;
            }
            "M" | "C" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    check.ranks.sort_unstable();
    check.span_names.sort_unstable();
    check.thread_names.sort_unstable();
    Ok(check)
}

/// Stage/metric names in a re-imported trace are interned (and leaked)
/// so they can live as the `&'static str`s [`TraceData`] carries. The
/// pool is deduplicated, so total leakage is bounded by the vocabulary —
/// dozens of short names, once per process.
fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut pool = pool.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(&hit) = pool.iter().find(|&&n| n == s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.push(leaked);
    leaked
}

/// Re-import an exported trace-event JSON document as a [`TraceData`],
/// the inverse of [`to_chrome_json`]: `X` events become span events
/// (with `index`/`bytes`/`dep_*` args restored), per-stage aggregates
/// are rebuilt from the spans, and `C` events become counters or gauges
/// according to their `cat`. Flow and metadata events carry no
/// information the spans don't, and are skipped.
///
/// This is what lets `tracereport` and [`crate::analysis`] run offline on
/// a trace file long after the run that produced it.
pub fn parse_trace(json: &str) -> Result<TraceData, String> {
    use crate::trace::{Hist, MetricStat, SpanDeps, SpanEvent, StageStat};
    use std::collections::BTreeMap;

    let doc = self::json::parse(json)?;
    let events_json = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;

    let ns_of = |micros: f64| -> u64 { (micros * 1e3).round().max(0.0) as u64 };
    let mut data = TraceData::default();
    for (i, ev) in events_json.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let num = |field: &str| -> Result<f64, String> {
            ev.get(field)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric {field}"))
        };
        match ph {
            "X" => {
                let rank = num("pid")? as u32;
                let role = ThreadRole::from_tid(num("tid")? as u64).unwrap_or(ThreadRole::Other);
                let name = ev
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
                let args = ev.get("args");
                let arg_num = |key: &str| -> Option<u64> {
                    args.and_then(|a| a.get(key))
                        .and_then(json::Value::as_f64)
                        .map(|v| v as u64)
                };
                let deps = args
                    .and_then(|a| a.get("dep_stage"))
                    .and_then(json::Value::as_str)
                    .map(|stage| SpanDeps {
                        stage: intern(stage),
                        lo: arg_num("dep_lo").unwrap_or(0),
                        hi: arg_num("dep_hi").unwrap_or(0),
                    });
                data.events.push(SpanEvent {
                    rank,
                    role,
                    name: intern(name),
                    start_ns: ns_of(num("ts")?),
                    dur_ns: ns_of(num("dur")?),
                    index: arg_num("index"),
                    bytes: arg_num("bytes"),
                    deps,
                });
            }
            "C" => {
                let rank = num("pid")? as u32;
                let role = ThreadRole::from_tid(num("tid")? as u64).unwrap_or(ThreadRole::Other);
                let name = ev
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(json::Value::as_f64)
                    .ok_or_else(|| format!("event {i}: counter missing args.value"))?
                    as u64;
                let m = MetricStat {
                    rank,
                    role,
                    name: intern(name),
                    value,
                };
                match ev.get("cat").and_then(json::Value::as_str) {
                    Some("gauge") => data.gauges.push(m),
                    _ => data.counters.push(m),
                }
            }
            // Metadata and flow arrows are derived views of the spans.
            _ => {}
        }
    }

    // Rebuild the per-stage aggregates the exporter's source had.
    let mut aggs: BTreeMap<(u32, ThreadRole, &'static str), StageStat> = BTreeMap::new();
    for e in &data.events {
        let s = aggs
            .entry((e.rank, e.role, e.name))
            .or_insert_with(|| StageStat {
                rank: e.rank,
                role: e.role,
                name: e.name,
                count: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
                bytes: 0,
                hist: Hist::default(),
            });
        s.min_ns = if s.count == 0 {
            e.dur_ns
        } else {
            s.min_ns.min(e.dur_ns)
        };
        s.count += 1;
        s.total_ns += e.dur_ns;
        s.max_ns = s.max_ns.max(e.dur_ns);
        s.bytes += e.bytes.unwrap_or(0);
        s.hist.record(e.dur_ns);
    }
    data.stages = aggs.into_values().collect();
    data.events
        .sort_by_key(|e| (e.rank, e.role, e.start_ns, e.name, e.index));
    data.counters.sort_by_key(|m| (m.rank, m.role, m.name));
    data.gauges.sort_by_key(|m| (m.rank, m.role, m.name));
    Ok(data)
}

/// A minimal JSON reader, sufficient to validate trace-event documents.
///
/// Deliberately small: objects keep insertion order as `(key, value)`
/// pairs, numbers are `f64`, and no serialization is offered (the
/// exporter writes its own JSON). Public so downstream smoke tools can
/// validate captures without pulling a JSON dependency into this crate.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The `f64` if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The `&str` if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The key/value pairs if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }

        /// Look a key up in an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                // analyze: allow(alloc, reason = "cold JSON parse-error path; reachable from the ring hot path only through `.expect` method-name over-approximation (DESIGN 6c)")
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.pos + 5 > self.bytes.len() {
                                    return Err("truncated \\u escape".into());
                                }
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                if (0xd800..0xdc00).contains(&code)
                                    && self.bytes.get(self.pos + 5) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 6) == Some(&b'u')
                                    && self.pos + 11 <= self.bytes.len()
                                {
                                    // A high surrogate followed by another
                                    // \u escape: try to combine the pair.
                                    let hex2 = std::str::from_utf8(
                                        &self.bytes[self.pos + 7..self.pos + 11],
                                    )
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| "bad \\u escape".to_string())?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        let scalar =
                                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                        out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                                        self.pos += 10;
                                    } else {
                                        // Unpaired high surrogate.
                                        out.push('\u{fffd}');
                                        self.pos += 4;
                                    }
                                } else {
                                    // Lone surrogates have no scalar value;
                                    // everything else maps directly.
                                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                    self.pos += 4;
                                }
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 character verbatim.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().expect("rest is non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(items));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                items.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(items));
                    }
                    _ => return Err(format!("expected , or }} at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;
    use crate::recorder::Recorder;

    fn synthetic_capture() -> TraceData {
        let rec = Recorder::trace();
        for rank in 0..2u32 {
            let filter = rec.track(rank, ThreadRole::Filter);
            for i in 0..3u64 {
                let mut sp = filter.span("load").with_index(i);
                sp.set_bytes(1024);
                drop(sp);
                let _f = filter.span("filter").with_index(i);
            }
            drop(filter);
            let main = rec.track(rank, ThreadRole::Main);
            {
                let _outer = main
                    .span("allgather")
                    .with_index(0)
                    .with_deps("filter", 0, 1);
                let _inner = main.span("send");
            }
            main.counter_add("ring.push_stalls", 4);
            main.gauge_max("ring.high_water", 7);
        }
        rec.collect()
    }

    #[test]
    fn json_parser_roundtrips_basic_values() {
        let v =
            json::parse(r#"{"a": [1, -2.5e1, "x\n\"yA"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n\"yA")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert!(json::parse("[1, 2,]").is_err());
        assert!(json::parse("{\"a\" 1}").is_err());
        assert!(json::parse("123 45").is_err());
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let data = synthetic_capture();
        let out = to_chrome_json(&data);
        let doc = json::parse(&out).expect("exporter emits parseable JSON");
        assert!(doc.get("traceEvents").is_some());
        let check = validate(&out).expect("trace-event invariants hold");
        // 2 ranks x (3 load + 3 filter + allgather + send) spans.
        assert_eq!(check.span_events, 16);
        // Each allgather depends on filter 0..=1: 2 arrows x 2 events x 2 ranks.
        assert_eq!(check.flow_events, 8);
        assert_eq!(check.ranks, vec![0, 1]);
        assert!(check.has_thread("filter"));
        assert!(check.has_thread("main"));
        assert!(!check.has_thread("backprojection"));
        for name in ["load", "filter", "allgather", "send"] {
            assert!(check.has_span(name), "missing span {name}");
        }
    }

    #[test]
    fn required_fields_present_on_every_span_event() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut spans = 0;
        for ev in events {
            for f in ["ph", "pid", "tid", "name"] {
                assert!(ev.get(f).is_some(), "event missing {f}: {ev:?}");
            }
            if ev.get("ph").unwrap().as_str() == Some("X") {
                spans += 1;
                assert!(ev.get("ts").unwrap().as_f64().is_some());
                assert!(ev.get("dur").unwrap().as_f64().is_some());
            }
        }
        assert_eq!(spans, data.events.len());
    }

    #[test]
    fn span_args_carry_index_and_bytes() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let load = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("name").and_then(Value::as_str) == Some("load")
            })
            .unwrap();
        let args = load.get("args").unwrap();
        assert_eq!(args.get("bytes").unwrap().as_f64(), Some(1024.0));
        assert!(args.get("index").unwrap().as_f64().is_some());
    }

    #[test]
    fn counters_and_gauges_become_counter_events() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        // Per rank: one counter + one gauge.
        assert_eq!(counters.len(), 4);
        let stall = counters
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("ring.push_stalls"))
            .unwrap();
        assert_eq!(
            stall.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn thread_metadata_announces_one_lane_per_role() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let lanes: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_f64().unwrap() as u32,
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string(),
                )
            })
            .collect();
        // 2 ranks x (filter + main) lanes, each announced exactly once.
        assert_eq!(lanes.len(), 4);
        for rank in 0..2 {
            assert!(lanes.contains(&(rank, "filter".to_string())));
            assert!(lanes.contains(&(rank, "main".to_string())));
        }
    }

    #[test]
    fn empty_capture_exports_cleanly() {
        let out = to_chrome_json(&TraceData::default());
        let check = validate(&out).unwrap();
        assert_eq!(check.span_events, 0);
        assert!(check.ranks.is_empty());
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents": 3}"#).is_err());
        assert!(validate(r#"{"traceEvents": [{"ph":"X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents": [{"ph":"X","pid":0,"tid":1,"name":"a","ts":0}]}"#).is_err(),
            "missing dur must be rejected"
        );
    }

    #[test]
    fn micros_keeps_nanosecond_resolution() {
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(0), "0.000");
    }

    #[test]
    fn flow_events_pair_producers_with_consumers() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut by_id: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap();
            if ph == "s" || ph == "f" {
                let id = ev.get("id").unwrap().as_f64().unwrap() as u64;
                assert_eq!(ev.get("cat").and_then(Value::as_str), Some("dep"));
                assert_eq!(ev.get("name").and_then(Value::as_str), Some("filter"));
                if ph == "f" {
                    assert_eq!(ev.get("bp").and_then(Value::as_str), Some("e"));
                }
                by_id
                    .entry(id)
                    .or_default()
                    .push(if ph == "s" { "s" } else { "f" });
            }
        }
        assert_eq!(by_id.len(), 4, "2 ranks x 2 producer arrows");
        for (id, phs) in by_id {
            assert_eq!(phs, vec!["s", "f"], "flow id {id} must pair start+finish");
        }
    }

    #[test]
    fn non_ascii_and_control_names_round_trip() {
        let mut data = TraceData::default();
        data.events.push(crate::trace::SpanEvent {
            rank: 0,
            role: ThreadRole::Other,
            name: "stage β→\t\"x\"\u{1F680}",
            start_ns: 10,
            dur_ns: 5,
            index: None,
            bytes: None,
            deps: None,
        });
        let out = to_chrome_json(&data);
        assert!(out.is_ascii(), "exporter must emit pure-ASCII JSON");
        let check = validate(&out).expect("escaped names stay valid");
        assert!(check.has_span("stage β→\t\"x\"\u{1F680}"));
        let parsed = parse_trace(&out).unwrap();
        assert_eq!(parsed.events[0].name, "stage β→\t\"x\"\u{1F680}");
    }

    #[test]
    fn parse_trace_round_trips_the_capture() {
        let data = synthetic_capture();
        let parsed = parse_trace(&to_chrome_json(&data)).unwrap();
        assert_eq!(parsed.structure(), data.structure());
        assert_eq!(parsed.events.len(), data.events.len());
        for (a, b) in parsed.events.iter().zip(data.events.iter()) {
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.dur_ns, b.dur_ns);
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.deps.map(|d| (d.lo, d.hi)), b.deps.map(|d| (d.lo, d.hi)));
            assert_eq!(a.deps.map(|d| d.stage), b.deps.map(|d| d.stage));
        }
        // Aggregates are rebuilt faithfully from the spans...
        assert_eq!(parsed.stages.len(), data.stages.len());
        for (a, b) in parsed.stages.iter().zip(data.stages.iter()) {
            assert_eq!((a.rank, a.role, a.name), (b.rank, b.role, b.name));
            assert_eq!(a.count, b.count);
            assert_eq!(a.total_ns, b.total_ns);
            assert_eq!(a.bytes, b.bytes);
        }
        // ...and metrics keep their kind and value.
        assert_eq!(parsed.counters, data.counters);
        assert_eq!(parsed.gauges, data.gauges);
    }

    #[test]
    fn parser_decodes_surrogate_pairs() {
        let v = json::parse(r#""🚀 ok é""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F680} ok \u{e9}"));
        let v = json::parse(r#""\ud83d\ude80 \u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F680} \u{e9}"));
        // Lone surrogates degrade to the replacement character.
        let v = json::parse(r#""\ud83d!""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}!"));
        let v = json::parse(r#""\ud83dA""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn validate_requires_flow_ids() {
        let good = r#"{"traceEvents": [{"ph":"s","pid":0,"tid":1,"ts":1,"name":"d","id":7}]}"#;
        assert_eq!(validate(good).unwrap().flow_events, 1);
        let bad = r#"{"traceEvents": [{"ph":"s","pid":0,"tid":1,"ts":1,"name":"d"}]}"#;
        assert!(validate(bad).is_err(), "flow event without id must fail");
    }
}
