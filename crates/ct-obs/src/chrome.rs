//! Chrome trace-event JSON export.
//!
//! [`to_chrome_json`] renders a [`TraceData`] capture as the trace-event
//! format understood by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`: one *process* per distributed rank, one named
//! *thread* per pipeline role, complete (`"ph":"X"`) events for spans and
//! counter (`"ph":"C"`) samples for the final counter/gauge values. The
//! format reference is the "Trace Event Format" document; only the subset
//! below is emitted:
//!
//! * `M` metadata events naming each rank's process and each role's
//!   thread lane;
//! * `X` complete events with microsecond `ts`/`dur` (fractional, so
//!   sub-microsecond stages survive the export);
//! * `C` counter events carrying the end-of-run counters and high-water
//!   gauges.
//!
//! The writer is hand-rolled: the vocabulary is tiny, the crate stays
//! dependency-free, and the output is deterministic (events are emitted
//! in the capture's sorted order).

use crate::recorder::ThreadRole;
use crate::trace::TraceData;
use std::fmt::Write as _;

/// All roles, in lane order.
const ROLES: [ThreadRole; 5] = [
    ThreadRole::Filter,
    ThreadRole::Main,
    ThreadRole::Backprojection,
    ThreadRole::Io,
    ThreadRole::Other,
];

/// Escape a string for a JSON string literal (quotes not included).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Format nanoseconds as fractional microseconds (the unit `ts`/`dur`
/// use). Three decimals keep full nanosecond resolution.
fn micros(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Render a capture as Chrome trace-event JSON.
///
/// The result is a single JSON object `{"traceEvents": [...],
/// "displayTimeUnit": "ms"}` — load it directly in Perfetto or
/// `chrome://tracing`.
pub fn to_chrome_json(data: &TraceData) -> String {
    let mut events: Vec<String> = Vec::new();

    // Metadata: name one process per rank, one thread lane per role that
    // actually recorded something on that rank.
    let ranks = data.ranks();
    let seen_role = |rank: u32, role: ThreadRole| -> bool {
        data.events.iter().any(|e| e.rank == rank && e.role == role)
            || data.stages.iter().any(|s| s.rank == rank && s.role == role)
            || data
                .counters
                .iter()
                .chain(data.gauges.iter())
                .any(|m| m.rank == rank && m.role == role)
    };
    for &rank in &ranks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_sort_index\",\
             \"args\":{{\"sort_index\":{rank}}}}}"
        ));
        for role in ROLES {
            if !seen_role(rank, role) {
                continue;
            }
            let tid = role.tid();
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                role.as_str()
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
    }

    // Spans as complete events.
    for e in &data.events {
        let mut ev = String::with_capacity(128);
        ev.push_str("{\"ph\":\"X\",\"pid\":");
        let _ = write!(ev, "{}", e.rank);
        let _ = write!(ev, ",\"tid\":{}", e.role.tid());
        let _ = write!(ev, ",\"ts\":{}", micros(e.start_ns));
        let _ = write!(ev, ",\"dur\":{}", micros(e.dur_ns));
        ev.push_str(",\"cat\":\"stage\",\"name\":\"");
        escape_into(&mut ev, e.name);
        ev.push('"');
        if e.index.is_some() || e.bytes.is_some() {
            ev.push_str(",\"args\":{");
            let mut first = true;
            if let Some(i) = e.index {
                let _ = write!(ev, "\"index\":{i}");
                first = false;
            }
            if let Some(b) = e.bytes {
                if !first {
                    ev.push(',');
                }
                let _ = write!(ev, "\"bytes\":{b}");
            }
            ev.push('}');
        }
        ev.push('}');
        events.push(ev);
    }

    // Counters and gauges as counter samples at the end of the capture,
    // so the tracks render next to the span timeline.
    let end_ns = data
        .events
        .iter()
        .map(|e| e.end_ns())
        .max()
        .unwrap_or_default();
    for (kind, metrics) in [("counter", &data.counters), ("gauge", &data.gauges)] {
        for m in metrics.iter() {
            let mut ev = String::with_capacity(96);
            ev.push_str("{\"ph\":\"C\",\"pid\":");
            let _ = write!(ev, "{}", m.rank);
            let _ = write!(ev, ",\"tid\":{}", m.role.tid());
            let _ = write!(ev, ",\"ts\":{}", micros(end_ns));
            let _ = write!(ev, ",\"cat\":\"{kind}\",\"name\":\"");
            escape_into(&mut ev, m.name);
            let _ = write!(ev, "\",\"args\":{{\"value\":{}}}", m.value);
            ev.push('}');
            events.push(ev);
        }
    }

    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// What [`validate`] extracts from a trace-event JSON document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceCheck {
    /// Number of `"ph":"X"` complete (span) events.
    pub span_events: usize,
    /// Distinct `pid`s (ranks) observed on span events.
    pub ranks: Vec<u64>,
    /// Thread names announced by `thread_name` metadata events.
    pub thread_names: Vec<String>,
    /// Distinct span names observed.
    pub span_names: Vec<String>,
}

impl TraceCheck {
    /// True when a thread lane with this name was announced.
    pub fn has_thread(&self, name: &str) -> bool {
        self.thread_names.iter().any(|n| n == name)
    }

    /// True when at least one span with this name was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_names.iter().any(|n| n == name)
    }
}

/// Parse a trace-event JSON document and check the invariants the
/// exporter promises: a `traceEvents` array whose `X` entries all carry
/// `ph`, `ts`, `dur`, `pid`, `tid` and `name`. Returns a summary of what
/// the trace contains, or a description of the first violation.
///
/// This uses the crate's own minimal JSON parser, so CI smoke tests and
/// the `tracecheck` tool can validate captures without further
/// dependencies.
pub fn validate(json: &str) -> Result<TraceCheck, String> {
    let doc = json::parse(json)?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut check = TraceCheck::default();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |name: &str| -> Result<&json::Value, String> {
            ev.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("event {i} missing field {name}"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph is not a string"))?;
        // Every event kind carries pid, tid and name.
        let pid = field("pid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: pid is not a number"))?;
        field("tid")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: tid is not a number"))?;
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name is not a string"))?;
        match ph {
            "X" => {
                field("ts")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: ts is not a number"))?;
                let dur = field("dur")?
                    .as_f64()
                    .ok_or_else(|| format!("event {i}: dur is not a number"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                check.span_events += 1;
                if !check.ranks.contains(&(pid as u64)) {
                    check.ranks.push(pid as u64);
                }
                if !check.span_names.iter().any(|n| n == name) {
                    check.span_names.push(name.to_string());
                }
            }
            "M" if name == "thread_name" => {
                let args = field("args")?
                    .as_object()
                    .ok_or_else(|| format!("event {i}: args is not an object"))?;
                let tname = args
                    .iter()
                    .find(|(k, _)| k == "name")
                    .and_then(|(_, v)| v.as_str())
                    .ok_or_else(|| format!("event {i}: thread_name missing args.name"))?;
                if !check.thread_names.iter().any(|n| n == tname) {
                    check.thread_names.push(tname.to_string());
                }
            }
            "M" | "C" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    check.ranks.sort_unstable();
    check.span_names.sort_unstable();
    check.thread_names.sort_unstable();
    Ok(check)
}

/// A minimal JSON reader, sufficient to validate trace-event documents.
///
/// Deliberately small: objects keep insertion order as `(key, value)`
/// pairs, numbers are `f64`, and no serialization is offered (the
/// exporter writes its own JSON). Public so downstream smoke tools can
/// validate captures without pulling a JSON dependency into this crate.
pub mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The `f64` if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The `&str` if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The key/value pairs if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }

        /// Look a key up in an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|c| c as char),
                    self.pos
                )),
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while matches!(
                self.peek(),
                Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            ) {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.pos + 5 > self.bytes.len() {
                                    return Err("truncated \\u escape".into());
                                }
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .map_err(|_| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                // Surrogate pairs are not needed for the
                                // exporter's vocabulary; map them to the
                                // replacement character.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Copy one UTF-8 character verbatim.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(items));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                items.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(items));
                    }
                    _ => return Err(format!("expected , or }} at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::Value;
    use super::*;
    use crate::recorder::Recorder;

    fn synthetic_capture() -> TraceData {
        let rec = Recorder::trace();
        for rank in 0..2u32 {
            let filter = rec.track(rank, ThreadRole::Filter);
            for i in 0..3u64 {
                let mut sp = filter.span("load").with_index(i);
                sp.set_bytes(1024);
                drop(sp);
                let _f = filter.span("filter").with_index(i);
            }
            drop(filter);
            let main = rec.track(rank, ThreadRole::Main);
            {
                let _outer = main.span("allgather").with_index(0);
                let _inner = main.span("send");
            }
            main.counter_add("ring.push_stalls", 4);
            main.gauge_max("ring.high_water", 7);
        }
        rec.collect()
    }

    #[test]
    fn json_parser_roundtrips_basic_values() {
        let v =
            json::parse(r#"{"a": [1, -2.5e1, "x\n\"yA"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n\"yA")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert!(json::parse("[1, 2,]").is_err());
        assert!(json::parse("{\"a\" 1}").is_err());
        assert!(json::parse("123 45").is_err());
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let data = synthetic_capture();
        let out = to_chrome_json(&data);
        let doc = json::parse(&out).expect("exporter emits parseable JSON");
        assert!(doc.get("traceEvents").is_some());
        let check = validate(&out).expect("trace-event invariants hold");
        // 2 ranks x (3 load + 3 filter + allgather + send) spans.
        assert_eq!(check.span_events, 16);
        assert_eq!(check.ranks, vec![0, 1]);
        assert!(check.has_thread("filter"));
        assert!(check.has_thread("main"));
        assert!(!check.has_thread("backprojection"));
        for name in ["load", "filter", "allgather", "send"] {
            assert!(check.has_span(name), "missing span {name}");
        }
    }

    #[test]
    fn required_fields_present_on_every_span_event() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut spans = 0;
        for ev in events {
            for f in ["ph", "pid", "tid", "name"] {
                assert!(ev.get(f).is_some(), "event missing {f}: {ev:?}");
            }
            if ev.get("ph").unwrap().as_str() == Some("X") {
                spans += 1;
                assert!(ev.get("ts").unwrap().as_f64().is_some());
                assert!(ev.get("dur").unwrap().as_f64().is_some());
            }
        }
        assert_eq!(spans, data.events.len());
    }

    #[test]
    fn span_args_carry_index_and_bytes() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let load = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("name").and_then(Value::as_str) == Some("load")
            })
            .unwrap();
        let args = load.get("args").unwrap();
        assert_eq!(args.get("bytes").unwrap().as_f64(), Some(1024.0));
        assert!(args.get("index").unwrap().as_f64().is_some());
    }

    #[test]
    fn counters_and_gauges_become_counter_events() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        // Per rank: one counter + one gauge.
        assert_eq!(counters.len(), 4);
        let stall = counters
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("ring.push_stalls"))
            .unwrap();
        assert_eq!(
            stall.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn thread_metadata_announces_one_lane_per_role() {
        let data = synthetic_capture();
        let doc = json::parse(&to_chrome_json(&data)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let lanes: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .map(|e| {
                (
                    e.get("pid").unwrap().as_f64().unwrap() as u32,
                    e.get("args")
                        .unwrap()
                        .get("name")
                        .unwrap()
                        .as_str()
                        .unwrap()
                        .to_string(),
                )
            })
            .collect();
        // 2 ranks x (filter + main) lanes, each announced exactly once.
        assert_eq!(lanes.len(), 4);
        for rank in 0..2 {
            assert!(lanes.contains(&(rank, "filter".to_string())));
            assert!(lanes.contains(&(rank, "main".to_string())));
        }
    }

    #[test]
    fn empty_capture_exports_cleanly() {
        let out = to_chrome_json(&TraceData::default());
        let check = validate(&out).unwrap();
        assert_eq!(check.span_events, 0);
        assert!(check.ranks.is_empty());
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents": 3}"#).is_err());
        assert!(validate(r#"{"traceEvents": [{"ph":"X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents": [{"ph":"X","pid":0,"tid":1,"name":"a","ts":0}]}"#).is_err(),
            "missing dur must be rejected"
        );
    }

    #[test]
    fn micros_keeps_nanosecond_resolution() {
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_500), "1.500");
        assert_eq!(micros(0), "0.000");
    }
}
