//! In-tree stand-in for `proptest` (see `vendor/rand` for why the
//! workspace vendors its registry dependencies).
//!
//! Implements the slice of the proptest surface the workspace's
//! property tests use — the [`proptest!`] macro with an optional
//! `#![proptest_config(..)]` header, range and tuple strategies,
//! [`Strategy::prop_map`], `any::<T>()`, `prop::collection::vec`, and
//! the `prop_assert*` macros — over a deterministic seeded sampler.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the case number; the
//!   seed is a pure function of the test name, so every failure replays
//!   identically with `cargo test <name>`.
//! * **Fixed seeding.** There is no persistence file or `PROPTEST_*`
//!   environment handling; runs are exhaustive over the same case list
//!   every time, which suits CI determinism.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Build the RNG for one named test: the seed is an FNV-1a hash of the
/// test name, so each test gets its own reproducible stream.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng { state: h }
}

/// Test-loop configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end - self.start;
                // Modulo bias is irrelevant at property-test spans.
                self.start + (rng.next_u64() as $t) % span
            }
        }
    )+};
}

int_range_strategy!(usize, u8, u16, u32, u64);

impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        self.start + wide % span
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (real proptest's `any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// A `Vec` of `elem`-generated values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The standard import set (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: an optional `#![proptest_config(expr)]`
/// header followed by `#[test] fn name(arg in strategy, ...) { .. }`
/// items. Each expands to a plain `#[test]` that samples `cases`
/// deterministic cases; a failure reports the case number and replays
/// identically on the next run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..cfg.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let ::std::result::Result::Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: failed at case {case} of {} \
                             (deterministic seed; rerun to replay)",
                            stringify!($name),
                            cfg.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body; accepts an optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("bounds");
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let f = crate::Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            (lo, hi) in (0usize..50, 50usize..100),
            xs in prop::collection::vec(0.0f32..1.0, 1..20),
            bits in any::<u32>(),
        ) {
            prop_assert!(lo < hi);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert_eq!(bits, bits);
        }
    }
}
