//! In-tree stand-in for `serde_json` (see `vendor/rand` for why the
//! workspace vendors its registry dependencies).
//!
//! Renders the `serde` shim's [`Value`](serde::Value) tree as JSON
//! text, matching the real crate's conventions where they are
//! observable: 2-space pretty indentation, floats always printed with
//! a decimal point or exponent, non-finite floats rendered as `null`,
//! strings escaped per RFC 8259.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization failure. The shim's rendering is total, so this is
/// currently never produced, but the signature matches the real crate
/// so call sites keep their error handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON with 2-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(pairs) => write_block(out, indent, depth, '{', '}', pairs.len(), |out, i| {
            let (k, v) = &pairs[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, indent, depth + 1);
        }),
    }
}

/// Shared layout for arrays and objects: one element per line when
/// pretty, comma-separated when compact.
fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut elem: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        elem(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json's arbitrary-precision-off behaviour.
        out.push_str("null");
        return;
    }
    let s = x.to_string();
    out.push_str(&s);
    // Rust's shortest-round-trip Display prints integral floats bare
    // ("3"); JSON consumers expect the float marker serde_json emits.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Seq(vec![Value::F64(1.0), Value::F64(2.5)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).expect("total");
        assert_eq!(compact, r#"{"a":1,"b":[1.0,2.5]}"#);
        let pretty = to_string_pretty(&Raw(v)).expect("total");
        assert_eq!(
            pretty,
            "{\n  \"a\": 1,\n  \"b\": [\n    1.0,\n    2.5\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_marker_and_nonfinite_is_null() {
        assert_eq!(to_string(&3.0f64).expect("total"), "3.0");
        assert_eq!(to_string(&f64::NAN).expect("total"), "null");
        assert_eq!(to_string(&0.1f64).expect("total"), "0.1");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(to_string("a\"b\\c\nd").expect("total"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn empty_containers() {
        let v: Vec<f64> = Vec::new();
        assert_eq!(to_string_pretty(&v).expect("total"), "[]");
    }
}
