//! In-tree stand-in for the `rand` crate.
//!
//! The container this repo builds in has no route to a crates.io index,
//! so external dependencies are vendored as minimal shims under
//! `vendor/` (the same zero-registry discipline ct-sync and xtask
//! already follow). This crate reimplements exactly the surface the
//! workspace uses — `StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen` for the primitive types — with the same trait shapes
//! as rand 0.8 so call sites compile unchanged.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 (the
//! construction rand's own `SmallRng` family uses). The real `StdRng`
//! documents *no* cross-version value stability, so matching rand's
//! exact stream is a non-goal; what matters here is that a given seed
//! reproduces the same stream on every run and platform, which this
//! guarantees.

#![forbid(unsafe_code)]

/// The low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible from an RNG — the shim's stand-in for rand's
/// `Standard` distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// High-level sampling, matching the `rand::Rng` extension-trait shape.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution:
    /// uniform bits for integers, uniform `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's
    /// `Standard` float convention).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a small state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Same engine as [`StdRng`]; the distinction only matters for the
    /// real crate's cryptographic variant.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn bits_look_mixed() {
        // Cheap sanity: across 4096 draws every byte position takes
        // many distinct values.
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [0u32; 8];
        for _ in 0..4096 {
            let x = rng.gen::<u64>();
            for (i, s) in seen.iter_mut().enumerate() {
                *s |= 1 << ((x >> (8 * i)) as u8 % 32);
            }
        }
        for s in seen {
            assert_eq!(s, u32::MAX);
        }
    }
}
