//! In-tree stand-in for `serde_derive` (see `vendor/rand` for why the
//! workspace vendors its registry dependencies).
//!
//! Supports exactly the shapes this workspace derives on: structs with
//! named fields and enums whose variants are all unit variants, no
//! generics, no `#[serde(...)]` attributes. Anything else is rejected
//! with a `compile_error!` naming the limitation, so drift is caught at
//! build time rather than producing a wrong impl.
//!
//! The generated code targets the in-tree `serde` shim's data model:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::from_value(&serde::Value) -> Result<Self, serde::Error>`.
//! The derive is written against `proc_macro` alone — input is walked
//! token by token and output is assembled as source text — because
//! `syn`/`quote` live in the unreachable registry too.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Serialize)
}

/// Derive `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Deserialize)
}

#[derive(Clone, Copy)]
enum Impl {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    /// Unit variants, in declaration order.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, which: Impl) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, which)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde shim derive produced unparsable code: {e}"))),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .unwrap_or_default()
}

/// Walk the item tokens: skip attributes and visibility, identify
/// `struct`/`enum`, capture the name, reject generics, then parse the
/// brace-delimited body.
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        match tt {
            // Outer attribute (`#[...]`, including doc comments): skip
            // the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    // Visibility: a following parenthesis group
                    // (`pub(crate)`) is consumed with its delimiter
                    // check below.
                    "pub" => {
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(s);
                        match iter.next() {
                            Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                            other => {
                                return Err(format!("expected type name, found {other:?}"));
                            }
                        }
                    }
                    other => return Err(format!("unexpected token `{other}` before item")),
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("serde shim derive does not support generic types".into());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let kind = kind.ok_or("found a brace body before `struct`/`enum`")?;
                let name = name.ok_or("found a brace body before the type name")?;
                let shape = if kind == "struct" {
                    Shape::Struct(parse_named_fields(g.stream())?)
                } else {
                    Shape::Enum(parse_unit_variants(g.stream())?)
                };
                return Ok((name, shape));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("serde shim derive does not support tuple structs".into());
            }
            other => return Err(format!("unexpected token {other} in item header")),
        }
    }
    Err("no struct/enum body found (unit structs are unsupported)".into())
}

/// `name: Type, ...` — attributes and visibility allowed per field.
/// Commas inside angle brackets (`BTreeMap<String, f64>`) are type
/// punctuation, so `<`/`>` depth is tracked while scanning past types.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Field head: skip attributes and visibility until the name.
        let name = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token {other} in field list")),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type: consume to the next comma at angle depth 0.
        let mut angle_depth = 0isize;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// `VariantA, VariantB, ...` — any payload is rejected.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    return Err(format!(
                        "serde shim derive supports only unit enum variants; `{id}` has a payload"
                    ));
                }
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '=' {
                        return Err(format!(
                            "serde shim derive does not support discriminants (variant `{id}`)"
                        ));
                    }
                }
                variants.push(id.to_string());
            }
            other => return Err(format!("unexpected token {other} in enum body")),
        }
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, which: Impl) -> String {
    match (which, shape) {
        (Impl::Serialize, Shape::Struct(fields)) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        (Impl::Deserialize, Shape::Struct(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?,\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}\n"
            )
        }
        (Impl::Serialize, Shape::Enum(variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(::std::string::String::from(match self {{ {arms} }}))\n\
                     }}\n\
                 }}\n"
            )
        }
        (Impl::Deserialize, Shape::Enum(variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok(Self::{v}),\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str()? {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(\
                                 ::serde::Error::custom(&format!(\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
