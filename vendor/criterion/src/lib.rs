//! In-tree stand-in for `criterion` (see `vendor/rand` for why the
//! workspace vendors its registry dependencies).
//!
//! Implements the API surface the `crates/bench/benches/*` files use —
//! groups, throughput annotation, `bench_function`/`bench_with_input`,
//! the `criterion_group!`/`criterion_main!` macros — over a simple
//! wall-clock harness: warm up for `warm_up_time`, then time batches
//! until `measurement_time` elapses and report the mean per-iteration
//! time plus derived throughput to stdout, one line per benchmark.
//!
//! No statistics engine, no HTML reports, no regression store. The
//! serious perf gate in this repo is the `gups` binary plus
//! `benchdiff` (median + MAD over pinned repeats); these benches are
//! profiling probes, and a stable one-line-per-bench text format is
//! all they need.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Work performed per iteration, used to derive a rate from the mean
/// iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    /// Filled by [`Bencher::iter`]: (iterations, total elapsed).
    result: &'a mut Option<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Time `f`: warm up, then measure batches until the measurement
    /// window closes.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_start = Instant::now();
        let mut batch = 1u64;
        while warm_start.elapsed() < self.warm_up {
            for _ in 0..batch {
                std_black_box(f());
            }
            batch = (batch * 2).min(1 << 20);
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                std_black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement {
                *self.result = Some((iters, elapsed));
                return;
            }
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the measurement window (after warm-up).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up = d;
        self
    }

    /// Accepted for API compatibility; the shim sizes its sample by
    /// time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benches with per-iteration work for rate
    /// reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b));
        self
    }

    /// Benchmark a closure receiving `input` under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run_one(&label, throughput, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.to_string();
        self.run_one(&label, None, |b| f(b));
        self
    }

    fn run_one(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut result = None;
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: &mut result,
        };
        f(&mut bencher);
        match result {
            Some((iters, elapsed)) if iters > 0 => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let rate = match throughput {
                    Some(Throughput::Bytes(n)) => {
                        format!(
                            "  {:>10.3} MiB/s",
                            n as f64 / per_iter / (1u64 << 20) as f64
                        )
                    }
                    Some(Throughput::Elements(n)) => {
                        format!("  {:>10.3} Melem/s", n as f64 / per_iter / 1e6)
                    }
                    None => String::new(),
                };
                println!("bench {label:<50} {:>12.3} us/iter{rate}", per_iter * 1e6);
            }
            _ => println!("bench {label:<50} (no measurement: iter() never called)"),
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("f", |b| {
            ran = true;
            b.iter(|| black_box(2u64 + 2));
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("k", 8).id, "k/8");
        assert_eq!(BenchmarkId::from_parameter(256).id, "256");
    }
}
