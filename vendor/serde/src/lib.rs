//! In-tree stand-in for `serde` (see `vendor/rand` for why the
//! workspace vendors its registry dependencies).
//!
//! Instead of the real crate's visitor architecture, this shim uses a
//! concrete value tree: [`Serialize`] renders a type into a [`Value`],
//! [`Deserialize`] rebuilds it from one, and `serde_json` (also
//! shimmed) formats/parses that tree. The trait and derive names match
//! the real crate, so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged.
//!
//! [`Value::Map`] is an order-preserving `Vec` of pairs, not a hash
//! map: derived struct output keeps declaration order, keeping exports
//! deterministic (the property `cargo xtask analyze` checks for
//! result-producing crates).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: what JSON can represent.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    I64(i64),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Binary floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of a [`Value::Map`], erroring with the field
    /// name when missing or when `self` is not a map.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(&format!("missing field `{name}`"))),
            other => Error::type_mismatch("map", other),
        }
    }

    /// View as a string, erroring otherwise.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Error::type_mismatch("string", other),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a caller-supplied message.
    pub fn custom(msg: &str) -> Self {
        Self(msg.to_string())
    }

    fn type_mismatch<T>(expected: &str, got: &Value) -> Result<T, Error> {
        Err(Self(format!("expected {expected}, found {}", got.kind())))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the serialization data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the serialization data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls --------------------------------------------------

macro_rules! int_impls {
    ($variant:ident: $($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let (val, ok) = match *v {
                    Value::I64(x) => (x as $t, <$t>::try_from(x).is_ok()),
                    Value::U64(x) => (x as $t, <$t>::try_from(x).is_ok()),
                    ref other => return Error::type_mismatch("integer", other),
                };
                if ok {
                    Ok(val)
                } else {
                    Err(Error::custom(&format!(
                        "integer out of range for {}", stringify!($t)
                    )))
                }
            }
        }
    )+};
}

int_impls!(I64: i8, i16, i32, i64, isize);
int_impls!(U64: u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::I64(x) => Ok(x as $t),
                    Value::U64(x) => Ok(x as $t),
                    ref other => Error::type_mismatch("number", other),
                }
            }
        }
    )+};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Error::type_mismatch("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- composite impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Seq(items) => Err(Error::custom(&format!(
                "expected array of length {N}, found {}",
                items.len()
            ))),
            other => Error::type_mismatch("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Error::type_mismatch("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Error::type_mismatch("map", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&String::from("hi").to_value()),
            Ok(String::from("hi"))
        );
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<f64>::from_value(&Value::F64(2.0)), Ok(Some(2.0)));
    }

    #[test]
    fn map_preserves_order() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2.0f64);
        m.insert("a".to_string(), 1.0);
        // BTreeMap iterates sorted; Value::Map preserves that order.
        match m.to_value() {
            Value::Map(pairs) => {
                assert_eq!(pairs[0].0, "a");
                assert_eq!(pairs[1].0, "b");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
